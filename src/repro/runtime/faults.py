"""Deterministic fault injection (chaos harness).

The retry/isolation machinery in this package is only trustworthy if
its failure paths are *testable*, and failure paths are only testable if
faults are reproducible.  This module injects configurable faults into
the LLM, compiler and simulation-sandbox seams, keyed by an explicit
seed plus the call's content -- never by wall-clock or global call
order -- so:

* the same seed always faults the same work units, regardless of job
  count or backend (serial, thread, process);
* a "5% of trials hard-fail" experiment names *exactly* which trials
  failed, run after run.

Pieces:

* :class:`FaultSpec` -- what to inject at one seam: a fault ``rate``,
  a ``kind`` (``exception`` / ``timeout`` / ``garbage``), and whether
  the fault is transient (clears after N raises, so retries succeed)
  or permanent (every attempt fails, so retries exhaust);
* :class:`FaultInjector` -- draws fault decisions deterministically
  from ``(seed, site, key)``;
* :class:`ChaosRepairModel` / :class:`ChaosLLMClient` /
  :class:`ChaosCompiler` -- wrappers that apply an injector to a real
  model / client / compiler.

``exception`` and ``timeout`` faults raise
:class:`~repro.errors.InjectedFault` /
:class:`~repro.errors.LLMTimeoutError` (both retryable);
``garbage`` faults *return* plausible junk instead of raising -- the
"model replied with nonsense" failure mode, which must be survived by
the agent loop rather than the retry layer.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Literal, Optional

from ..errors import InjectedFault, LLMTimeoutError
from .retry import guidance_key, messages_key

if TYPE_CHECKING:
    from ..diagnostics.compiler import CompileResult
    from ..llm.base import ChatMessage, RepairStep

FaultKind = Literal["exception", "timeout", "garbage"]

#: The junk a garbage-faulted model emits (never valid Verilog, so the
#: compiler keeps the loop honest).
GARBAGE_CODE = "@@@ chaos: garbled model reply @@@"


def _stable_unit(key: str) -> float:
    """Deterministic uniform(0,1) draw from a string key."""
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def _digest(text: str) -> str:
    """Short stable content digest for fault keying."""
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class FaultSpec:
    """Configuration of one fault seam.

    ``rate`` is the probability that a given call key draws a fault.
    ``transient_failures = 0`` makes drawn faults permanent (every
    attempt at that key fails); ``N > 0`` makes them transient (the
    first ``N`` attempts fail, then the call succeeds -- the
    retry-then-succeed shape).
    """

    rate: float
    kind: FaultKind = "exception"
    transient_failures: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.kind not in ("exception", "timeout", "garbage"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.transient_failures < 0:
            raise ValueError("transient_failures must be >= 0")


@dataclass
class FaultInjector:
    """Draws deterministic fault decisions for named seams.

    Seams: ``llm`` (``RepairModel.start`` / ``step``), ``client``
    (``LLMClient.complete``), ``compiler`` (``Compiler.compile``) and
    ``sim`` (the simulation-sandbox harnesses ``run_differential`` /
    ``make_sim_feedback``, sites ``sim.diff`` and ``sim.feedback``).
    The decision for a call is a pure function of ``(seed, site, key)``;
    only transient-recovery counting is stateful (per injector instance,
    which is exactly the retry loop's scope).  Simulation fault keys
    deliberately exclude the engine name so both engines draw the same
    fault for the same work -- the fuzz sandbox-differential invariant
    depends on that.
    """

    seed: int = 0
    llm: Optional[FaultSpec] = None
    client: Optional[FaultSpec] = None
    compiler: Optional[FaultSpec] = None
    sim: Optional[FaultSpec] = None
    #: (site, key) -> number of faults already raised (transient bookkeeping).
    _raised: dict = field(default_factory=dict, repr=False, compare=False)

    def _spec_for(self, site: str) -> Optional[FaultSpec]:
        return getattr(self, site.split(".", 1)[0], None)

    def decide(self, site: str, key: str) -> Optional[FaultKind]:
        """The fault (if any) for this call: ``None`` or a kind.

        Deterministic per ``(seed, site, key)``; a transient spec stops
        faulting a key after ``transient_failures`` decisions, so a
        retry of the same call recovers.
        """
        spec = self._spec_for(site)
        if spec is None or spec.rate <= 0.0:
            return None
        if _stable_unit(f"fault|{self.seed}|{site}|{key}") >= spec.rate:
            return None
        if spec.transient_failures:
            count = self._raised.get((site, key), 0)
            if count >= spec.transient_failures:
                return None
            self._raised[(site, key)] = count + 1
        return spec.kind

    def fire(self, site: str, key: str) -> Optional[FaultKind]:
        """Decide and, for raising kinds, raise the fault.

        Returns ``None`` (no fault) or ``"garbage"`` (the caller must
        fabricate a junk reply); ``exception``/``timeout`` raise.
        """
        kind = self.decide(site, key)
        if kind == "exception":
            raise InjectedFault(f"injected fault at {site} (key {key})")
        if kind == "timeout":
            raise LLMTimeoutError(f"injected timeout at {site} (key {key})")
        return kind


#: Ambient injector consulted by the simulation harnesses.  The LLM and
#: compiler seams wrap concrete objects, but the sim harnesses are plain
#: functions called from deep inside agents -- an ambient scope (the
#: same idiom as the verdict cache) reaches them without threading an
#: injector through every signature.
_active_sim_injector: Optional[FaultInjector] = None


def get_active_sim_injector() -> Optional[FaultInjector]:
    """The injector the simulation harnesses should consult, if any."""
    return _active_sim_injector


@contextmanager
def use_sim_chaos(injector: Optional[FaultInjector]):
    """Scope ``injector`` as the ambient simulation-fault source."""
    global _active_sim_injector
    previous = _active_sim_injector
    _active_sim_injector = injector
    try:
        yield injector
    finally:
        _active_sim_injector = previous


class ChaosRepairModel:
    """Chaos wrapper for a :class:`~repro.llm.base.RepairModel`.

    Fault keys include the wrapped model's seed (when it has one) and a
    content digest, so per-trial experiments fault the same trials at
    any job count.
    """

    def __init__(self, inner, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    @property
    def name(self) -> str:
        """Marks the model as chaos-wrapped in labels and reports."""
        return f"chaos({self.inner.name})"

    def with_seed(self, seed: int) -> "ChaosRepairModel":
        """Re-seed the wrapped model; the injector seed is independent
        (faults stay pinned to the chaos seed, not the sampling seed)."""
        inner = self.inner
        reseed = getattr(inner, "with_seed", None)
        if callable(reseed):
            inner = reseed(seed)
        return ChaosRepairModel(inner, self.injector)

    def _session_key(self, code: str) -> str:
        return f"{getattr(self.inner, 'seed', 0)}|{_digest(code)}"

    def start(self, code: str, flavor: str, use_rag: bool) -> "ChaosRepairSession":
        """Open a session, possibly faulting the handshake itself."""
        key = self._session_key(code)
        self.injector.fire("llm.start", key)
        return ChaosRepairSession(
            self.inner.start(code, flavor, use_rag), self.injector, key
        )


class ChaosRepairSession:
    """Session counterpart of :class:`ChaosRepairModel`."""

    def __init__(self, inner, injector: FaultInjector, key: str):
        self.inner = inner
        self.injector = injector
        self.key = key

    def step(self, code: str, feedback: str, guidance: list) -> RepairStep:
        """One model turn, faulted by content key (a retry of the same
        turn re-draws the same decision, so transient specs recover).
        Guidance participates in the key -- mirroring the retry layer --
        so turns differing only in retrieved guidance draw independent
        fault decisions."""
        # Imported here, not at module top: repro.llm.pool imports this
        # module, so a top-level llm import would be circular when the
        # runtime package initializes first (e.g. `rtlfixer fuzz`).
        from ..llm.base import RepairStep

        key = f"{self.key}|{_digest(code)}|{_digest(feedback)}|{guidance_key(guidance)}"
        kind = self.injector.fire("llm.step", key)
        if kind == "garbage":
            return RepairStep(
                thought="(chaos) the reply came back garbled",
                code=GARBAGE_CODE,
            )
        return self.inner.step(code, feedback, guidance)

    def observe(self, success: bool) -> None:
        """Forward the agent's per-iteration outcome signal (tier
        escalation) to the wrapped session when it routes on it."""
        notice = getattr(self.inner, "observe", None)
        if callable(notice):
            notice(success)


class ChaosLLMClient:
    """Chaos wrapper for a raw :class:`~repro.llm.base.LLMClient`."""

    def __init__(self, inner, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    def complete(self, messages: list["ChatMessage"], temperature: float = 0.4) -> str:
        """One chat completion, possibly faulted or garbled.  Keyed
        role- and temperature-aware (:func:`~repro.runtime.retry.messages_key`)
        like the retry layer, so a rearranged conversation or a changed
        temperature draws a fresh fault decision and a retried identical
        call re-draws the same one."""
        key = messages_key(messages, temperature)
        kind = self.injector.fire("client.complete", key)
        if kind == "garbage":
            return GARBAGE_CODE
        return self.inner.complete(messages, temperature=temperature)


class ChaosCompiler:
    """Chaos wrapper for the compiler facade.

    ``garbage`` faults compile a corrupted variant of the source, so the
    agent receives real-but-wrong diagnostics (a poisoned feedback
    channel) instead of an exception.
    """

    def __init__(self, inner, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    @property
    def flavor(self) -> str:
        """The wrapped compiler's feedback flavour."""
        return self.inner.flavor

    def compile(self, code: str) -> "CompileResult":
        """One compiler invocation, possibly faulted or poisoned."""
        kind = self.injector.fire("compiler.compile", _digest(code))
        if kind == "garbage":
            return self.inner.compile(code + "\n" + GARBAGE_CODE + "\n")
        return self.inner.compile(code)
