"""Deterministic client-side rate limiting for LLM backends.

Every API-backed backend publishes a requests-per-second budget and an
in-flight cap.  The pool (:mod:`repro.llm.pool`) enforces both *client
side* so a run never trips a provider's limiter:

* :class:`TokenBucket` -- the classic token bucket, but with the wait
  computed **arithmetically** from the bucket state (never from retry
  loops or wall-clock polling), so at a fixed injected clock the full
  admission schedule is reproducible down to the microsecond;
* :class:`ConcurrencyGate` -- a counting in-flight cap (bounded
  semaphore) with peak/wait statistics.

Both shape *timing only*: they delay or serialize calls but never
change which backend answers or what it replies, so rate-limited runs
stay bit-identical to unlimited ones (the pool's determinism contract).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

SleepFn = Callable[[float], None]
ClockFn = Callable[[], float]


class TokenBucket:
    """Token-bucket rate limiter with a deterministic admission schedule.

    ``rate`` is the refill in tokens per second (0 = unlimited, every
    acquire is free); ``burst`` is the bucket capacity (how many calls
    may go out back-to-back after an idle period).  :meth:`acquire`
    blocks (via the injected ``sleep``) until a token is available and
    returns the wait it imposed, so callers can account throttle time.

    The wait is pure arithmetic over ``(tokens, rate, clock())``: two
    runs with the same clock observe the same schedule, which is what
    makes limiter behaviour assertable in tests.
    """

    def __init__(
        self,
        rate: float,
        burst: int = 1,
        clock: ClockFn = time.monotonic,
        sleep: SleepFn = time.sleep,
    ):
        if rate < 0:
            raise ValueError(f"rate must be >= 0 (0 = unlimited), got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._sleep = sleep
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()
        #: observability: total acquires, total imposed wait, and
        #: non-blocking refusals (:meth:`try_acquire` shed decisions).
        self.acquires = 0
        self.waited = 0.0
        self.refusals = 0

    def _refill(self, now: float) -> None:
        if now > self._updated:
            self._tokens = min(
                float(self.burst), self._tokens + (now - self._updated) * self.rate
            )
        self._updated = now

    def acquire(self) -> float:
        """Take one token, sleeping until it exists; returns the wait."""
        if self.rate <= 0:
            with self._lock:
                self.acquires += 1
            return 0.0
        with self._lock:
            self.acquires += 1
            self._refill(self._clock())
            self._tokens -= 1.0
            # A negative balance is a reservation: this call owes
            # -tokens/rate seconds before its slot arrives.  Computing
            # the debt inside the lock keeps concurrent acquirers
            # strictly ordered; sleeping outside it keeps them parallel.
            wait = max(0.0, -self._tokens / self.rate)
            self.waited += wait
        if wait > 0.0:
            self._sleep(wait)
        return wait

    def try_acquire(self) -> bool:
        """Take one token only if it is available *right now*.

        The non-blocking admission-control variant used for per-tenant
        service quotas (:mod:`repro.service.scheduler`): unlike
        :meth:`acquire` it never sleeps and never goes into token debt
        -- a request beyond the quota is refused (shed) instead of
        delayed.  Returns True when a token was taken.
        """
        if self.rate <= 0:
            with self._lock:
                self.acquires += 1
            return True
        with self._lock:
            self._refill(self._clock())
            if self._tokens < 1.0:
                self.refusals += 1
                return False
            self.acquires += 1
            self._tokens -= 1.0
            return True

    @property
    def available(self) -> float:
        """Tokens available right now (refilled to the current clock);
        service telemetry only -- unlimited buckets report their burst."""
        with self._lock:
            if self.rate > 0:
                self._refill(self._clock())
            return self._tokens

    def __getstate__(self) -> dict:
        # Reset transient state (lock, balance) across pickling: a
        # limiter travelling into a pool worker starts a fresh window.
        return {"rate": self.rate, "burst": self.burst}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["rate"], state["burst"])


class ConcurrencyGate:
    """In-flight call cap (0 = unlimited) with peak tracking."""

    def __init__(self, limit: int = 0):
        if limit < 0:
            raise ValueError(f"limit must be >= 0 (0 = unlimited), got {limit}")
        self.limit = limit
        self._sem = threading.BoundedSemaphore(limit) if limit else None
        self._lock = threading.Lock()
        self._in_flight = 0
        self.peak = 0

    def __enter__(self) -> "ConcurrencyGate":
        if self._sem is not None:
            self._sem.acquire()
        with self._lock:
            self._in_flight += 1
            self.peak = max(self.peak, self._in_flight)
        return self

    def __exit__(self, *exc) -> None:
        with self._lock:
            self._in_flight -= 1
        if self._sem is not None:
            self._sem.release()

    def __getstate__(self) -> dict:
        return {"limit": self.limit}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["limit"])
