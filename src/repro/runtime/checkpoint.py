"""Durable run state: content-addressed trial checkpoints over a journal.

This layers resumability on top of :mod:`repro.runtime.journal`:

* **trial keys** (:func:`unit_key`) are content addresses -- a SHA-256
  over the stage name and everything that determines a trial's result
  (problem id, per-trial seed, the fixer-config digest, sample counts).
  Two runs with the same configuration derive the same keys, so a
  journal written by a killed run is directly addressable by its resumed
  successor;
* **config digests** (:func:`config_digest`) cover only the
  *result-relevant* fields of an :class:`~repro.core.config.RTLFixerConfig`
  -- execution knobs (``jobs``, ``on_error``, ``run_dir``,
  ``breaker_threshold``) are excluded, because parallelism and failure
  policy never change results (the determinism contract), so a run may
  be resumed with a different ``--jobs`` and still replay its journal;
* **payload codec** (:func:`encode_payload` / :func:`decode_payload`)
  round-trips work-unit results -- primitives, tuples, dataclasses
  (tagged by module-qualified name, restricted to this library) --
  through JSON bit-exactly, so a replayed trial is indistinguishable
  from a re-executed one;
* :class:`RunState` owns a run directory (journal, checkpoint manifest,
  final report) and answers "is this trial already done?";
* :class:`RunContext` bundles the run state with the graceful-shutdown
  flag and the circuit breaker, and provides the **durable map**: the
  resume-aware wrapper every experiment driver routes its
  :meth:`~repro.runtime.ParallelRunner.map` calls through.  Completed
  trials are replayed from the journal; only the remainder dispatches;
  every fresh result is journaled the moment it reaches the parent.

SKIPPED trials (circuit-breaker denials) and real failures (collected
:class:`~repro.runtime.WorkFailure` records, e.g. retries exhausted
against a temporary outage) are journaled for the record but never
treated as completed: a resumed run re-executes them, because the
outage behind them is expected to have cleared -- resuming is how a
run that limped through an outage heals.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Sequence

from ..errors import CheckpointError
from .executor import ParallelRunner, WorkFailure
from .journal import Journal
from .persist import atomic_write_json, atomic_write_text

if TYPE_CHECKING:  # typing only: avoid runtime cycles
    from ..core.config import RTLFixerConfig
    from .breaker import CircuitBreaker

#: RTLFixerConfig fields that control *how* a run executes, not what it
#: computes -- excluded from :func:`config_digest` so e.g. resuming with
#: more workers still replays the journal.
EXECUTION_ONLY_FIELDS = frozenset(
    {
        "jobs",
        "on_error",
        "run_dir",
        "breaker_threshold",
        # Pool timing knobs: hedging is primary-preferred and the
        # limiter/concurrency caps shape latency only, so none of them
        # can change a trial's result.  llm_pool / llm_escalate_after
        # DO change which model answers and stay in the digest.
        "llm_hedge",
        "llm_rate",
        "llm_concurrency",
    }
)

#: Run-directory artifact names.
JOURNAL_FILE = "journal.jsonl"
MANIFEST_FILE = "manifest.json"
REPORT_FILE = "report.json"


def _canonical(payload: Any) -> str:
    """Canonical JSON used for hashing (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_digest(text: str) -> str:
    """Short SHA-256 content address of a string (e.g. source code)."""
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def config_digest(config: "RTLFixerConfig") -> str:
    """Digest of a fixer config's result-relevant fields.

    Fields in :data:`EXECUTION_ONLY_FIELDS` are excluded; everything
    else (prompting, compiler, tier, temperature, seed, retry budget,
    compile limits, ...) participates, because it can change a trial's
    outcome.
    """
    fields = dataclasses.asdict(config)
    for name in EXECUTION_ONLY_FIELDS:
        fields.pop(name, None)
    return hashlib.sha256(_canonical(fields).encode()).hexdigest()[:16]


def unit_key(stage: str, **parts: Any) -> str:
    """Content-addressed trial id: SHA-256 over stage + named parts.

    Parts must be JSON-serializable (problem ids, seeds, digests,
    sample counts).  The full hex digest is used so keys never collide
    across stages or configurations.
    """
    return hashlib.sha256(
        _canonical({"stage": stage, "parts": parts}).encode()
    ).hexdigest()


# ---------------------------------------------------------------------------
# Payload codec
# ---------------------------------------------------------------------------

_DC_TAG = "__dataclass__"
_TUPLE_TAG = "__tuple__"


def _replayable(record: dict) -> bool:
    """Whether a journal record is a completed trial fit for replay.

    Skipped trials (breaker denials) and real failures (collected
    ``WorkFailure`` records) re-execute on resume instead of replaying.
    Failures are recognised by the ``failed`` flag; the payload-tag
    check keeps journals written before the flag existed honest too.
    """
    if record.get("skipped") or record.get("failed"):
        return False
    result = record.get("result")
    if isinstance(result, dict):
        tag = result.get(_DC_TAG)
        if isinstance(tag, str) and tag.endswith(":WorkFailure"):
            return False
    return True


def encode_payload(value: Any) -> Any:
    """Encode a work-unit result into JSON-serializable form.

    Supports primitives, lists, tuples (tagged, so they round-trip as
    tuples), string-keyed dicts, and dataclass instances (tagged by
    ``module:qualname`` and encoded field-by-field).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            _DC_TAG: f"{cls.__module__}:{cls.__qualname__}",
            "fields": {
                f.name: encode_payload(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [encode_payload(item) for item in value]}
    if isinstance(value, list):
        return [encode_payload(item) for item in value]
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise CheckpointError(
                    f"journal payloads require string dict keys, got {key!r}"
                )
            encoded[key] = encode_payload(item)
        return encoded
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise CheckpointError(
        f"cannot journal a result of type {type(value).__name__}"
    )


def _resolve_dataclass(tag: str) -> type:
    """Import the dataclass a ``module:qualname`` tag names (repro-only)."""
    module_name, _, qualname = tag.partition(":")
    if not module_name.startswith("repro"):
        raise CheckpointError(f"refusing to decode non-repro type {tag!r}")
    try:
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as exc:
        raise CheckpointError(f"cannot resolve journaled type {tag!r}: {exc}")
    if not dataclasses.is_dataclass(obj):
        raise CheckpointError(f"journaled type {tag!r} is not a dataclass")
    return obj


def decode_payload(value: Any) -> Any:
    """Invert :func:`encode_payload` bit-exactly."""
    if isinstance(value, dict):
        if _DC_TAG in value:
            cls = _resolve_dataclass(value[_DC_TAG])
            fields = {
                name: decode_payload(item)
                for name, item in value.get("fields", {}).items()
            }
            return cls(**fields)
        if _TUPLE_TAG in value:
            return tuple(decode_payload(item) for item in value[_TUPLE_TAG])
        return {key: decode_payload(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_payload(item) for item in value]
    return value


# ---------------------------------------------------------------------------
# Run state
# ---------------------------------------------------------------------------


class RunState:
    """A run directory: journal + manifest + completed-trial index.

    >>> state = RunState("runs/nightly")
    >>> state.completed(key)        # already journaled?
    >>> state.record(key, result)   # durable the moment this returns
    """

    def __init__(self, run_dir: str, fsync: bool = True):
        """Open (creating or recovering) the run directory's journal."""
        self.run_dir = run_dir
        os.makedirs(run_dir, exist_ok=True)
        self.fsync = fsync
        self.journal = Journal(os.path.join(run_dir, JOURNAL_FILE), fsync=fsync)
        #: trial key -> encoded result, from replayed journal records
        #: (skipped and failed records are excluded: they re-execute).
        self._completed: dict[str, Any] = {}
        for record in self.journal:
            if not _replayable(record):
                continue
            key = record.get("key")
            if isinstance(key, str):
                self._completed[key] = record.get("result")

    @property
    def manifest_path(self) -> str:
        """Path of the checkpoint manifest inside the run directory."""
        return os.path.join(self.run_dir, MANIFEST_FILE)

    @property
    def replayed_trials(self) -> int:
        """How many completed trials the journal already held at open."""
        return len(self._completed)

    def ensure_manifest(self, manifest: dict, resume: bool = False) -> None:
        """Validate (or create) the run's checkpoint manifest.

        A manifest pins the run's identity -- config/scale digests --
        so ``--resume`` against a directory written with a different
        configuration fails fast instead of mixing incompatible trials.
        Refuses to reuse a directory with journaled trials unless
        ``resume`` is set (never silently clobber a previous run).
        """
        if os.path.exists(self.manifest_path):
            with open(self.manifest_path) as handle:
                existing = json.load(handle)
            if existing != manifest:
                raise CheckpointError(
                    f"run directory {self.run_dir!r} was written with a "
                    "different configuration; resume with the original "
                    "settings or use a fresh --run-dir "
                    f"(manifest {self.manifest_path})"
                )
            if not resume and len(self.journal):
                raise CheckpointError(
                    f"run directory {self.run_dir!r} already holds "
                    f"{len(self.journal)} journaled trial(s); pass --resume "
                    "to continue it or use a fresh --run-dir"
                )
        else:
            atomic_write_json(self.manifest_path, manifest, fsync=self.fsync)

    def completed(self, key: str) -> bool:
        """Whether a (non-skipped) result for ``key`` is journaled."""
        return key in self._completed

    def result(self, key: str) -> Any:
        """Decode the journaled result for a completed trial key."""
        return decode_payload(self._completed[key])

    def record(self, key: str, result: Any, stage: str = "",
               skipped: bool = False) -> None:
        """Durably journal one trial result (the commit point).

        Skipped trials and real failures (non-skipped
        :class:`~repro.runtime.WorkFailure` results) are journaled for
        the record but kept out of the completed index, so a resumed
        run re-executes them instead of replaying the outage.
        """
        failed = isinstance(result, WorkFailure) and not skipped
        encoded = encode_payload(result)
        self.journal.append({
            "key": key,
            "stage": stage,
            "skipped": bool(skipped),
            "failed": failed,
            "result": encoded,
        })
        if not skipped and not failed:
            self._completed[key] = encoded

    def write_report(self, text: str) -> None:
        """Atomically persist the final report JSON into the run dir."""
        atomic_write_text(
            os.path.join(self.run_dir, REPORT_FILE), text, fsync=self.fsync
        )

    def close(self) -> None:
        """Close the journal handle."""
        self.journal.close()

    def __enter__(self) -> "RunState":
        """Context-manager support."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close on scope exit."""
        self.close()


# ---------------------------------------------------------------------------
# Run context: the durable map
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class RunContext:
    """Everything a driver needs for a durable, interruptible run.

    ``state`` enables journal replay/recording (None = stateless),
    ``breaker`` gates dispatch on outage detection, ``should_stop`` is
    the graceful-shutdown flag.  ``RunContext()`` (all defaults) is a
    no-op context: drivers route unconditionally through :meth:`map`
    and pay nothing when durability is off.
    """

    state: Optional[RunState] = None
    breaker: Optional["CircuitBreaker"] = None
    should_stop: Optional[Callable[[], bool]] = None
    #: Trials served from the journal instead of re-executed.
    replayed: int = 0
    #: Trials actually dispatched this session.
    executed: int = 0

    def map(
        self,
        runner: ParallelRunner,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        keys: Optional[Sequence[str]] = None,
        stage: str = "",
        on_error: str = "raise",
        progress: Optional[Callable[[int, int, Any], None]] = None,
    ) -> list:
        """Resume-aware :meth:`~repro.runtime.ParallelRunner.map`.

        With run state and ``keys`` (one content-addressed key per
        item), journaled trials are replayed in place and only the
        remainder dispatches; fresh results (including collected
        :class:`~repro.runtime.WorkFailure` records, re-indexed to their
        global slots) are journaled as they complete.  Without state it
        degrades to a plain ``runner.map`` that still honours the
        breaker and the shutdown flag.
        """
        items = list(items)
        if self.state is None or keys is None:
            results = runner.map(
                fn, items, progress=progress, on_error=on_error,
                should_stop=self.should_stop, breaker=self.breaker,
            )
            self.executed += len(items)
            return results

        keys = list(keys)
        if len(keys) != len(items):
            raise CheckpointError(
                f"durable map needs one key per item "
                f"(got {len(keys)} keys for {len(items)} items)"
            )
        state = self.state
        results: list[Any] = [None] * len(items)
        todo_items: list[Any] = []
        todo_indices: list[int] = []
        for index, (item, key) in enumerate(zip(items, keys)):
            if state.completed(key):
                results[index] = state.result(key)
                self.replayed += 1
            else:
                todo_items.append(item)
                todo_indices.append(index)

        def reindex(local: int, result: Any) -> Any:
            """Map a todo-local WorkFailure back to its global slot."""
            if isinstance(result, WorkFailure):
                return dataclasses.replace(result, index=todo_indices[local])
            return result

        def on_result(local: int, item: Any, result: Any) -> None:
            """Journal one fresh result at its commit point."""
            global_index = todo_indices[local]
            remapped = reindex(local, result)
            state.record(
                keys[global_index], remapped, stage=stage,
                skipped=getattr(remapped, "skipped", False),
            )

        mapped = runner.map(
            fn, todo_items, progress=progress, on_error=on_error,
            on_result=on_result, should_stop=self.should_stop,
            breaker=self.breaker,
        )
        self.executed += len(todo_items)
        for local, result in enumerate(mapped):
            results[todo_indices[local]] = reindex(local, result)
        return results

    def stats(self) -> dict:
        """Replay/execution telemetry for the whole run so far."""
        return {"replayed": self.replayed, "executed": self.executed}
