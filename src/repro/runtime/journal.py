"""Append-only, crash-safe JSONL trial journal.

The durable-run subsystem records every completed trial as one line of
a journal file the moment its result reaches the parent process, so a
SIGKILL / OOM / power loss at trial 199/212 loses at most the trials
that were still in flight.  The file format is designed so that *any*
byte-level truncation or corruption is detected and recovered from:

* one record per line: ``<crc32 as 8 hex chars><space><canonical JSON>``;
* the CRC32 covers exactly the JSON body bytes, so a record is valid
  iff it parses *and* its checksum matches;
* appends are flushed and ``fsync``'d before :meth:`Journal.append`
  returns (a journaled trial is a durable trial);
* on open, the file is scanned from the top: the longest valid prefix
  is kept, and everything from the first invalid record on is truncated
  away (a *torn tail* -- the partially-written last line of a killed
  process -- is the common case; a mid-file corruption also stops the
  scan, because records after a corrupt region cannot be trusted).

Records are plain JSON objects; the journal imposes no schema beyond
"one object per line" -- :mod:`repro.runtime.checkpoint` layers trial
keys and payload encoding on top.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Iterator, Optional

from .persist import fsync_directory

#: ``<8 hex chars><space>`` -- the fixed-width checksum prefix.
_CRC_WIDTH = 8


def encode_record(record: dict) -> bytes:
    """Serialize one record to its on-disk line (checksum + JSON + LF).

    The JSON body is canonical (sorted keys, no whitespace) so the
    checksum is a function of the record's *content*, not of dict
    ordering.
    """
    body = json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return f"{crc:08x} ".encode() + body + b"\n"


def decode_line(line: bytes) -> Optional[dict]:
    """Parse and verify one journal line; ``None`` if torn or corrupt."""
    if len(line) < _CRC_WIDTH + 2 or line[_CRC_WIDTH : _CRC_WIDTH + 1] != b" ":
        return None
    try:
        expected = int(line[:_CRC_WIDTH], 16)
    except ValueError:
        return None
    body = line[_CRC_WIDTH + 1 :]
    if zlib.crc32(body) & 0xFFFFFFFF != expected:
        return None
    try:
        record = json.loads(body)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


@dataclass(frozen=True)
class JournalRecovery:
    """What :class:`Journal` found (and fixed) when opening a file.

    ``truncated_bytes`` is nonzero when a torn tail or corrupt record
    was cut away; ``reason`` says which ("torn-tail" for an invalid
    final line, "corrupt-record" for an invalid line with valid lines
    after it -- the scan still stops there, because everything past a
    corrupt region is untrustworthy).
    """

    records: int
    truncated_bytes: int = 0
    reason: str = ""


class Journal:
    """Append-only JSONL journal with per-record CRC32 and fsync'd appends.

    >>> journal = Journal(path)        # recovers/truncates a torn tail
    >>> journal.replayed               # the valid records already on disk
    >>> journal.append({"key": "..."}) # durable once this returns
    """

    def __init__(self, path: str, fsync: bool = True):
        """Open (creating or recovering) the journal at ``path``.

        ``fsync=False`` trades crash-durability of individual appends
        for speed -- appropriate for tests and throwaway runs only.
        """
        self.path = path
        self.fsync = fsync
        self._directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(self._directory, exist_ok=True)
        self.replayed, self.recovery = self._recover()
        created = not os.path.exists(path)
        self._handle = open(path, "ab")
        if created and self.fsync:
            # Durable appends are worthless if the file's own directory
            # entry is lost to a power cut: sync it once at creation.
            fsync_directory(self._directory)
        self._appended = 0

    def _recover(self) -> tuple[list[dict], JournalRecovery]:
        """Scan the file; keep the valid prefix, truncate the rest."""
        if not os.path.exists(self.path):
            return [], JournalRecovery(records=0)
        with open(self.path, "rb") as handle:
            data = handle.read()
        records: list[dict] = []
        offset = 0
        invalid_at: Optional[int] = None
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline < 0:
                invalid_at = offset  # unterminated final line: torn tail
                break
            record = decode_line(data[offset:newline])
            if record is None:
                invalid_at = offset
                break
            records.append(record)
            offset = newline + 1
        if invalid_at is None:
            return records, JournalRecovery(records=len(records))
        truncated = len(data) - invalid_at
        tail = data[invalid_at:]
        reason = "torn-tail" if tail.count(b"\n") <= 1 else "corrupt-record"
        with open(self.path, "r+b") as handle:
            handle.truncate(invalid_at)
            handle.flush()
            os.fsync(handle.fileno())
        if self.fsync:
            fsync_directory(self._directory)
        return records, JournalRecovery(
            records=len(records), truncated_bytes=truncated, reason=reason
        )

    def __len__(self) -> int:
        """Total durable records: replayed at open + appended since."""
        return len(self.replayed) + self._appended

    def __iter__(self) -> Iterator[dict]:
        """Iterate the records that were on disk when the journal opened."""
        return iter(self.replayed)

    def append(self, record: dict) -> None:
        """Durably append one record (flushed and fsync'd before return)."""
        self._handle.write(encode_record(record))
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._appended += 1

    def close(self) -> None:
        """Close the append handle (the journal stays valid on disk)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "Journal":
        """Context-manager support: ``with Journal(path) as journal:``."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close on scope exit."""
        self.close()
