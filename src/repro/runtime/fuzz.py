"""Deterministic corpus fuzzer for the compiler front-end.

The crash-proofing contract of :func:`repro.diagnostics.compile_source`
-- *never crash, never hang, always return diagnostics* -- is only
credible if it is continuously exercised against adversarial input.
This module is the built-in prosecutor: a seeded mutation fuzzer that
drives the full pipeline (lexer, preprocessor, parser, elaborator)
under deliberately tight :data:`~repro.verilog.limits.FUZZ_LIMITS` and
cross-checks the invariants the rest of the system relies on:

1. **no uncaught exception** -- every input yields a
   :class:`~repro.diagnostics.compiler.CompileResult`;
2. **renderer agreement** -- the iverilog- and Quartus-styled runs of
   the same input agree on pass/fail and on the ``crashed`` flag, and
   both render their logs without raising;
3. **cache transparency** -- compiling through a fresh
   :class:`~repro.runtime.cache.CompileCache` returns the same verdict
   as the uncached run (checked on a deterministic subsample);
4. **bounded time** -- each input compiles within a wall-clock budget;
5. **pipeline differential** -- a *warm* incremental
   :class:`~repro.verilog.pipeline.CompileSession` (held across all
   iterations, so every compile is an "edit" of the previous input)
   produces results bit-identical to the cold ``compile_source`` run,
   in both flavors (:func:`~repro.verilog.pipeline.result_fingerprint`
   is the equality witness);
6. **simulator differential** -- every successfully elaborated input is
   simulated a few seeded steps (including deliberate all-X stimulus, so
   the two-state fast path's demotion machinery is exercised) on both
   the interpreting :class:`~repro.sim.simulator.Simulator` and the
   compiled :class:`~repro.sim.engine.CompiledSimulator`; per-signal
   state, memories, ``$display`` logs and raised
   :class:`~repro.errors.SimulationError` messages must be identical.

Determinism is the backbone: iteration ``i`` of seed ``s`` derives all
randomness from ``random.Random(f"fuzz|{s}|{i}")``, so a failing
iteration can be replayed in isolation and two runs with the same seed
produce byte-identical mutation sequences and verdicts
(:meth:`FuzzReport.digest` is the cheap equality witness).  The chaos
harness plugs in through an optional
:class:`~repro.runtime.faults.FaultInjector`: seams drawn as
``garbage`` splice the canonical chaos junk into the fuzzed source, so
fault-injection and fuzzing compose in one run.

Exposed on the CLI as ``rtlfixer fuzz --seed N --iterations K``.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Optional

from ..verilog.limits import FUZZ_LIMITS, ResourceLimits
from .faults import GARBAGE_CODE, FaultInjector

#: Small, varied Verilog snippets the mutators start from.  Mostly
#: well-formed (mutations break them in interesting ways), plus a few
#: already-broken entries so error-recovery paths get fuzzed too.
SEED_CORPUS: tuple[str, ...] = (
    "module top_module(input a, input b, output out);\n"
    "  assign out = a & b;\n"
    "endmodule\n",
    "module top_module(input clk, input d, output reg q);\n"
    "  always @(posedge clk) q <= d;\n"
    "endmodule\n",
    "module top_module(input [7:0] in, output [7:0] out);\n"
    "  assign out = {in[0], in[7:1]};\n"
    "endmodule\n",
    "module m #(parameter W = 4)(input [W-1:0] d, output [W-1:0] q);\n"
    "  genvar i;\n"
    "  generate for (i = 0; i < W; i = i + 1) begin : g\n"
    "    assign q[i] = d[W-1-i];\n"
    "  end endgenerate\n"
    "endmodule\n",
    "`define WIDTH 8\n"
    "module m(input [`WIDTH-1:0] a, output reg [`WIDTH-1:0] b);\n"
    "  always @(*) begin\n"
    "    case (a)\n"
    "      8'h00: b = 8'hff;\n"
    "      default: b = a;\n"
    "    endcase\n"
    "  end\n"
    "endmodule\n",
    "module m(input wire x, output wire y)\n"
    "  assign y = x\n"
    "endmodule\n",
    "module m(input a, output reg q);\n"
    "  always @(posedge clk) begin\n"
    "    q <= a;\n"
    "endmodule\n",
    "module m; wire w = 3'b012; endmodule\n",
)

#: Token soup spliced into sources by the token mutator.
_SPLICE_TOKENS: tuple[str, ...] = (
    "module", "endmodule", "begin", "end", "always", "assign", "posedge",
    "case", "endcase", "if", "else", "wire", "reg", "input", "output",
    ";", ",", "(", ")", "[", "]", "{", "}", "@", "#", "=", "<=", "?", ":",
    "8'hff", "3'b01x", "'", "`", "\\", "$display", "generate", "for",
    "\x00", "é", "//", "/*", "*/", '"',
)

Mutator = Callable[[Random, str, dict], str]


def _mut_byte_splice(rng: Random, code: str, includes: dict) -> str:
    """Overwrite or insert a few random bytes at random positions."""
    chars = list(code) or [" "]
    for _ in range(rng.randint(1, 8)):
        pos = rng.randrange(len(chars))
        ch = chr(rng.choice((rng.randint(0, 127), rng.randint(0, 0x2FF))))
        if rng.random() < 0.5:
            chars[pos] = ch
        else:
            chars.insert(pos, ch)
    return "".join(chars)


def _mut_token_splice(rng: Random, code: str, includes: dict) -> str:
    """Insert random Verilog-ish tokens at random positions."""
    parts = [code]
    for _ in range(rng.randint(1, 5)):
        victim = parts.pop(rng.randrange(len(parts)))
        cut = rng.randrange(len(victim) + 1)
        token = rng.choice(_SPLICE_TOKENS)
        parts.extend([victim[:cut], f" {token} ", victim[cut:]])
    return "".join(parts)


def _mut_truncate(rng: Random, code: str, includes: dict) -> str:
    """Cut the source off mid-construct."""
    if not code:
        return code
    return code[: rng.randrange(len(code))]


def _mut_duplicate(rng: Random, code: str, includes: dict) -> str:
    """Duplicate a random slice (repeated modules, doubled headers...)."""
    if not code:
        return code
    lo = rng.randrange(len(code))
    hi = rng.randrange(lo, min(len(code), lo + 512) + 1)
    return code[:hi] + code[lo:hi] + code[hi:]


def _mut_macro_bomb(rng: Random, code: str, includes: dict) -> str:
    """Prepend an exponentially fanning (or cyclic) ``\\`define`` chain."""
    depth = rng.randint(3, 12)
    lines = ["`define F0 x"]
    for i in range(1, depth):
        lines.append(f"`define F{i} `F{i - 1} `F{i - 1}")
    if rng.random() < 0.3:  # close the loop: a macro cycle
        lines[0] = f"`define F0 `F{depth - 1}"
    lines.append(f"`define BOOM `F{depth - 1}")
    return "\n".join(lines) + "\nmodule b; wire w = `BOOM; endmodule\n" + code


def _mut_include_bomb(rng: Random, code: str, includes: dict) -> str:
    """Add mutually-recursive ``\\`include`` files to the file map."""
    chain = rng.randint(2, 5)
    for i in range(chain):
        includes[f"f{i}.vh"] = (
            f'`include "f{(i + 1) % chain}.vh"\n`define I{i} {i}\n'
        )
    return '`include "f0.vh"\n' + code


def _mut_paren_nest(rng: Random, code: str, includes: dict) -> str:
    """Append an expression wrapped in deeply nested parentheses."""
    depth = rng.randint(16, 2000)
    expr = "(" * depth + "1" + ")" * depth
    return code + f"\nmodule p(output o); assign o = {expr}; endmodule\n"


def _mut_ident_blowup(rng: Random, code: str, includes: dict) -> str:
    """Append a declaration with an absurdly long identifier."""
    name = "x" * rng.randint(256, 20000)
    return code + f"\nmodule q; wire {name}; endmodule\n"


#: Name -> mutator registry; names appear in reports and failure replays.
MUTATORS: dict[str, Mutator] = {
    "byte_splice": _mut_byte_splice,
    "token_splice": _mut_token_splice,
    "truncate": _mut_truncate,
    "duplicate": _mut_duplicate,
    "macro_bomb": _mut_macro_bomb,
    "include_bomb": _mut_include_bomb,
    "paren_nest": _mut_paren_nest,
    "ident_blowup": _mut_ident_blowup,
}

#: Every this-many iterations, additionally cross-check cache vs no-cache.
_CACHE_CHECK_EVERY = 7


@dataclass(frozen=True)
class FuzzConfig:
    """Parameters of one fuzzing run."""

    seed: int = 0
    iterations: int = 200
    #: Resource budgets applied to every fuzzed compile (tight by
    #: default so adversarial inputs are cut off quickly).
    limits: ResourceLimits = FUZZ_LIMITS
    #: Wall-clock ceiling per fuzzed input, in seconds; an iteration
    #: slower than this is recorded as a hang failure.
    per_input_budget: float = 2.0
    #: Optional chaos integration: a fault injector whose ``compiler``
    #: seam, when drawn as ``garbage``, splices chaos junk into the
    #: fuzzed source before compiling.
    injector: Optional[FaultInjector] = None

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ValueError("iterations must be >= 0")
        if self.per_input_budget <= 0:
            raise ValueError("per_input_budget must be > 0")


@dataclass(frozen=True)
class FuzzFailure:
    """One invariant violation found by the fuzzer."""

    iteration: int
    invariant: str
    detail: str
    mutations: tuple[str, ...]
    #: Head of the offending source, enough to reproduce with the seed.
    snippet: str

    def describe(self) -> str:
        """One-line human-readable account of the violation."""
        muts = "+".join(self.mutations) or "(corpus)"
        return (
            f"iteration {self.iteration} [{muts}] violated "
            f"{self.invariant}: {self.detail}"
        )


@dataclass
class FuzzReport:
    """Outcome of :func:`run_fuzz`: verdicts, failures, statistics."""

    config: FuzzConfig
    #: Per-iteration verdict strings (status + error categories), in
    #: iteration order -- the determinism witness.
    verdicts: list[str] = field(default_factory=list)
    #: Per-iteration "+"-joined mutator names, in iteration order.
    mutations: list[str] = field(default_factory=list)
    failures: list[FuzzFailure] = field(default_factory=list)
    #: How often each mutator ran.
    mutator_counts: dict[str, int] = field(default_factory=dict)
    #: Count of results per status letter (P=pass, F=fail, C=crashed).
    status_counts: dict[str, int] = field(default_factory=dict)
    elapsed: float = 0.0
    slowest: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every invariant held on every iteration."""
        return not self.failures

    def digest(self) -> str:
        """SHA-256 over the mutation and verdict sequences.

        Two runs with the same config must produce the same digest;
        comparing digests is how reproducibility is asserted without
        shipping the full sequences around.
        """
        hasher = hashlib.sha256()
        for mutation, verdict in zip(self.mutations, self.verdicts):
            hasher.update(mutation.encode())
            hasher.update(b"\x00")
            hasher.update(verdict.encode())
            hasher.update(b"\x00")
        return hasher.hexdigest()

    def summary(self) -> str:
        """Multi-line human-readable run summary."""
        lines = [
            f"fuzz seed={self.config.seed} iterations={len(self.verdicts)} "
            f"elapsed={self.elapsed:.2f}s slowest={self.slowest * 1000:.0f}ms",
            "status: " + (
                " ".join(
                    f"{status}={count}"
                    for status, count in sorted(self.status_counts.items())
                ) or "(none)"
            ),
            "mutators: " + (
                " ".join(
                    f"{name}={count}"
                    for name, count in sorted(self.mutator_counts.items())
                ) or "(none)"
            ),
            f"digest: {self.digest()}",
        ]
        if self.failures:
            lines.append(f"FAILURES ({len(self.failures)}):")
            lines.extend("  " + failure.describe() for failure in self.failures)
        else:
            lines.append("all invariants held")
        return "\n".join(lines)


def _verdict(result) -> str:
    """Compact stable verdict for one CompileResult."""
    if result.crashed:
        status = "C"
    elif result.ok:
        status = "P"
    else:
        status = "F"
    cats = ",".join(c.value for c in result.categories)
    return f"{status}:{cats}" if cats else status


def _fuzz_one(
    config: FuzzConfig, iteration: int
) -> tuple[str, dict[str, str], tuple[str, ...]]:
    """Derive iteration ``iteration``'s input: (code, includes, mutations).

    Pure function of (seed, iteration) -- this is what makes any failing
    iteration individually replayable.
    """
    rng = Random(f"fuzz|{config.seed}|{iteration}")
    code = rng.choice(SEED_CORPUS)
    includes: dict[str, str] = {}
    names = sorted(MUTATORS)
    picked = tuple(
        rng.choice(names) for _ in range(rng.randint(1, 3))
    )
    for name in picked:
        code = MUTATORS[name](rng, code, includes)
    if config.injector is not None:
        kind = config.injector.decide(
            "compiler.fuzz", f"{config.seed}|{iteration}"
        )
        if kind == "garbage":
            code = GARBAGE_CODE + "\n" + code
    return code, includes, picked


#: Steps driven per simulator-differential check; cycle 2 drives all-X
#: stimulus so mid-run X contamination (and the compiled engine's bail +
#: reinterpret machinery) is exercised on every checked design.
_SIM_DIFF_STEPS = 4


def _sim_differential(design, limits, rng: Random) -> Optional[str]:
    """Cross-check interpreted vs compiled simulation of ``design``.

    Returns a failure detail string, or None when both engines agree
    (including agreeing on any raised :class:`SimulationError`).
    """
    from ..errors import SimulationError
    from ..sim.engine import CompiledSimulator
    from ..sim.simulator import Simulator
    from ..sim.values import Logic

    sims = {}
    errors = {}
    for name, cls in (("interp", Simulator), ("compiled", CompiledSimulator)):
        try:
            sims[name] = cls(design, limits=limits)
        except SimulationError as exc:
            errors[name] = str(exc)
    if errors:
        if set(errors) != {"interp", "compiled"}:
            missing = "interp" if "interp" in errors else "compiled"
            return (
                f"only {missing} raised at construction: "
                f"{errors.get('interp') or errors.get('compiled')}"
            )
        if errors["interp"] != errors["compiled"]:
            return (
                f"construction errors differ: interp={errors['interp']!r} "
                f"compiled={errors['compiled']!r}"
            )
        return None
    interp, compiled = sims["interp"], sims["compiled"]
    ports = interp.inputs
    for cycle in range(_SIM_DIFF_STEPS):
        stimulus: dict = {}
        for port in ports:
            if cycle == 2:
                stimulus[port.name] = Logic.all_x(port.width)
            else:
                stimulus[port.name] = rng.getrandbits(port.width)
        step_errors = {}
        for name, sim in (("interp", interp), ("compiled", compiled)):
            try:
                sim.step(dict(stimulus))
            except SimulationError as exc:
                step_errors[name] = str(exc)
        if step_errors:
            if set(step_errors) != {"interp", "compiled"}:
                missing = "interp" if "interp" in step_errors else "compiled"
                return f"only {missing} raised at step {cycle}"
            if step_errors["interp"] != step_errors["compiled"]:
                return (
                    f"step {cycle} errors differ: "
                    f"interp={step_errors['interp']!r} "
                    f"compiled={step_errors['compiled']!r}"
                )
            return None
        if dict(interp.state.values) != dict(compiled.state.values):
            diverged = sorted(
                name
                for name, value in interp.state.values.items()
                if compiled.state.values.get(name) != value
            )
            return f"state diverged at step {cycle}: {diverged[:4]}"
        if interp.state.arrays != compiled.state.arrays:
            return f"memories diverged at step {cycle}"
        if interp.display_log != compiled.display_log:
            return f"$display logs diverged at step {cycle}"
    return None


def run_fuzz(config: FuzzConfig | None = None) -> FuzzReport:
    """Run the fuzzer and return a :class:`FuzzReport`.

    Never raises for input-triggered reasons: invariant violations are
    collected as :class:`FuzzFailure` records (``report.ok`` is the
    pass/fail signal), so the harness itself honours the never-crash
    contract it is checking.
    """
    from ..diagnostics.compiler import compile_source
    from ..verilog.pipeline import (
        CompileSession,
        StageCache,
        result_fingerprint,
        use_stage_cache,
    )
    from .cache import CompileCache, no_compile_cache

    config = config if config is not None else FuzzConfig()
    report = FuzzReport(config=config)
    start = time.monotonic()

    # The pipeline-differential invariant holds one warm session (and
    # one private stage cache) across the entire run: every iteration's
    # input is an "edit" of the previous one from the session's point of
    # view, so incremental lex resume and parse-segment replay are
    # exercised against maximally hostile sources.
    session = CompileSession(limits=config.limits)
    stage_cache = StageCache()

    for iteration in range(config.iterations):
        code, includes, picked = _fuzz_one(config, iteration)
        label = "+".join(picked)
        report.mutations.append(label)
        for name in picked:
            report.mutator_counts[name] = report.mutator_counts.get(name, 0) + 1

        def fail(invariant: str, detail: str) -> None:
            report.failures.append(
                FuzzFailure(
                    iteration=iteration,
                    invariant=invariant,
                    detail=detail,
                    mutations=picked,
                    snippet=code[:120],
                )
            )

        tick = time.monotonic()
        results = {}
        try:
            with no_compile_cache():
                for flavor in ("iverilog", "quartus"):
                    result = compile_source(
                        code,
                        flavor=flavor,
                        include_files=includes or None,
                        limits=config.limits,
                    )
                    if not isinstance(result.log, str):
                        fail("render", f"{flavor} log is not a string")
                    results[flavor] = result
        except BaseException as exc:  # the one thing that must not happen
            fail("no-exception", f"{type(exc).__name__}: {exc}")
            report.verdicts.append("X")
            continue
        took = time.monotonic() - tick
        report.slowest = max(report.slowest, took)
        if took > config.per_input_budget:
            fail(
                "bounded-time",
                f"{took:.2f}s > {config.per_input_budget:.2f}s budget",
            )

        iv, qu = results["iverilog"], results["quartus"]
        if (iv.ok, iv.crashed) != (qu.ok, qu.crashed):
            fail(
                "flavor-agreement",
                f"iverilog (ok={iv.ok}, crashed={iv.crashed}) != "
                f"quartus (ok={qu.ok}, crashed={qu.crashed})",
            )

        try:
            with use_stage_cache(stage_cache):
                for flavor in ("iverilog", "quartus"):
                    warm = session.compile(
                        code, flavor=flavor, include_files=includes or None
                    )
                    if result_fingerprint(warm) != result_fingerprint(
                        results[flavor]
                    ):
                        fail(
                            "pipeline-differential",
                            f"warm CompileSession diverged from cold "
                            f"compile_source ({flavor})",
                        )
        except BaseException as exc:
            fail("no-exception", f"session path: {type(exc).__name__}: {exc}")

        if iv.ok and iv.elaborated is not None:
            try:
                detail = _sim_differential(
                    iv.elaborated,
                    config.limits,
                    Random(f"simdiff|{config.seed}|{iteration}"),
                )
                if detail is not None:
                    fail("simulator-differential", detail)
            except BaseException as exc:
                fail(
                    "no-exception",
                    f"sim path: {type(exc).__name__}: {exc}",
                )

        verdict = _verdict(iv)
        report.verdicts.append(verdict)
        status = verdict.split(":", 1)[0]
        report.status_counts[status] = report.status_counts.get(status, 0) + 1

        if iteration % _CACHE_CHECK_EVERY == 0:
            try:
                cache = CompileCache(maxsize=8)
                first = cache.compile(
                    code, include_files=includes or None, limits=config.limits
                )
                second = cache.compile(
                    code, include_files=includes or None, limits=config.limits
                )
                if second is not first:
                    fail("cache-identity", "second lookup missed the cache")
                if _verdict(first) != verdict:
                    fail(
                        "cache-transparency",
                        f"cached verdict {_verdict(first)!r} != "
                        f"uncached {verdict!r}",
                    )
            except BaseException as exc:
                fail("no-exception", f"cache path: {type(exc).__name__}: {exc}")

    report.elapsed = time.monotonic() - start
    return report
