"""Deterministic corpus fuzzer for the compiler front-end.

The crash-proofing contract of :func:`repro.diagnostics.compile_source`
-- *never crash, never hang, always return diagnostics* -- is only
credible if it is continuously exercised against adversarial input.
This module is the built-in prosecutor: a seeded mutation fuzzer that
drives the full pipeline (lexer, preprocessor, parser, elaborator)
under deliberately tight :data:`~repro.verilog.limits.FUZZ_LIMITS` and
cross-checks the invariants the rest of the system relies on:

1. **no uncaught exception** -- every input yields a
   :class:`~repro.diagnostics.compiler.CompileResult`;
2. **renderer agreement** -- the iverilog- and Quartus-styled runs of
   the same input agree on pass/fail and on the ``crashed`` flag, and
   both render their logs without raising;
3. **cache transparency** -- compiling through a fresh
   :class:`~repro.runtime.cache.CompileCache` returns the same verdict
   as the uncached run (checked on a deterministic subsample);
4. **bounded time** -- each input compiles within a wall-clock budget;
5. **pipeline differential** -- a *warm* incremental
   :class:`~repro.verilog.pipeline.CompileSession` (held across all
   iterations, so every compile is an "edit" of the previous input)
   produces results bit-identical to the cold ``compile_source`` run,
   in both flavors (:func:`~repro.verilog.pipeline.result_fingerprint`
   is the equality witness);
6. **simulator differential** -- every successfully elaborated input is
   simulated a few seeded steps (including deliberate all-X stimulus, so
   the two-state fast path's demotion machinery is exercised) on both
   the interpreting :class:`~repro.sim.simulator.Simulator` and the
   compiled :class:`~repro.sim.engine.CompiledSimulator`; per-signal
   state, memories, ``$display`` logs and raised
   :class:`~repro.errors.SimulationError` messages must be identical.
   Simulation-oriented mutators (:data:`SIM_MUTATORS`) additionally
   perturb the stimulus shape -- cycle-count scaling, extra X-injection
   cycles, random bit flips -- so the check covers more than the default
   4-step schedule;
7. **sandbox differential** -- both engines run under the tight
   :data:`~repro.sim.limits.FUZZ_SIM_LIMITS` sandbox budgets and must
   agree on the sandbox *category* (``ok``/``fail``/``limit``/
   ``crashed``) and on the exhausted budget kind (runs cut off by the
   nondeterministic wall-clock watchdog are exempt from comparison);
8. **sim-cache / sim-chaos transparency** -- on a deterministic
   subsample, the differential testbench is run twice against a fresh
   :class:`~repro.sim.verdict.VerdictCache`: repeated verdicts must
   agree, ``limit``/``crashed``/chaos-injected verdicts must never be
   memoized, and an injected simulator fault must leave the cache empty.

Determinism is the backbone: iteration ``i`` of seed ``s`` derives all
randomness from ``random.Random(f"fuzz|{s}|{i}")``, so a failing
iteration can be replayed in isolation and two runs with the same seed
produce byte-identical mutation sequences and verdicts
(:meth:`FuzzReport.digest` is the cheap equality witness).  The chaos
harness plugs in through an optional
:class:`~repro.runtime.faults.FaultInjector`: seams drawn as
``garbage`` splice the canonical chaos junk into the fuzzed source, so
fault-injection and fuzzing compose in one run.

Exposed on the CLI as ``rtlfixer fuzz --seed N --iterations K``.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace
from random import Random
from typing import Callable, Optional

from ..verilog.limits import FUZZ_LIMITS, ResourceLimits
from .faults import GARBAGE_CODE, FaultInjector

#: Small, varied Verilog snippets the mutators start from.  Mostly
#: well-formed (mutations break them in interesting ways), plus a few
#: already-broken entries so error-recovery paths get fuzzed too.
SEED_CORPUS: tuple[str, ...] = (
    "module top_module(input a, input b, output out);\n"
    "  assign out = a & b;\n"
    "endmodule\n",
    "module top_module(input clk, input d, output reg q);\n"
    "  always @(posedge clk) q <= d;\n"
    "endmodule\n",
    "module top_module(input [7:0] in, output [7:0] out);\n"
    "  assign out = {in[0], in[7:1]};\n"
    "endmodule\n",
    "module m #(parameter W = 4)(input [W-1:0] d, output [W-1:0] q);\n"
    "  genvar i;\n"
    "  generate for (i = 0; i < W; i = i + 1) begin : g\n"
    "    assign q[i] = d[W-1-i];\n"
    "  end endgenerate\n"
    "endmodule\n",
    "`define WIDTH 8\n"
    "module m(input [`WIDTH-1:0] a, output reg [`WIDTH-1:0] b);\n"
    "  always @(*) begin\n"
    "    case (a)\n"
    "      8'h00: b = 8'hff;\n"
    "      default: b = a;\n"
    "    endcase\n"
    "  end\n"
    "endmodule\n",
    "module m(input wire x, output wire y)\n"
    "  assign y = x\n"
    "endmodule\n",
    "module m(input a, output reg q);\n"
    "  always @(posedge clk) begin\n"
    "    q <= a;\n"
    "endmodule\n",
    "module m; wire w = 3'b012; endmodule\n",
)

#: Token soup spliced into sources by the token mutator.
_SPLICE_TOKENS: tuple[str, ...] = (
    "module", "endmodule", "begin", "end", "always", "assign", "posedge",
    "case", "endcase", "if", "else", "wire", "reg", "input", "output",
    ";", ",", "(", ")", "[", "]", "{", "}", "@", "#", "=", "<=", "?", ":",
    "8'hff", "3'b01x", "'", "`", "\\", "$display", "generate", "for",
    "\x00", "é", "//", "/*", "*/", '"',
)

Mutator = Callable[[Random, str, dict], str]


def _mut_byte_splice(rng: Random, code: str, includes: dict) -> str:
    """Overwrite or insert a few random bytes at random positions."""
    chars = list(code) or [" "]
    for _ in range(rng.randint(1, 8)):
        pos = rng.randrange(len(chars))
        ch = chr(rng.choice((rng.randint(0, 127), rng.randint(0, 0x2FF))))
        if rng.random() < 0.5:
            chars[pos] = ch
        else:
            chars.insert(pos, ch)
    return "".join(chars)


def _mut_token_splice(rng: Random, code: str, includes: dict) -> str:
    """Insert random Verilog-ish tokens at random positions."""
    parts = [code]
    for _ in range(rng.randint(1, 5)):
        victim = parts.pop(rng.randrange(len(parts)))
        cut = rng.randrange(len(victim) + 1)
        token = rng.choice(_SPLICE_TOKENS)
        parts.extend([victim[:cut], f" {token} ", victim[cut:]])
    return "".join(parts)


def _mut_truncate(rng: Random, code: str, includes: dict) -> str:
    """Cut the source off mid-construct."""
    if not code:
        return code
    return code[: rng.randrange(len(code))]


def _mut_duplicate(rng: Random, code: str, includes: dict) -> str:
    """Duplicate a random slice (repeated modules, doubled headers...)."""
    if not code:
        return code
    lo = rng.randrange(len(code))
    hi = rng.randrange(lo, min(len(code), lo + 512) + 1)
    return code[:hi] + code[lo:hi] + code[hi:]


def _mut_macro_bomb(rng: Random, code: str, includes: dict) -> str:
    """Prepend an exponentially fanning (or cyclic) ``\\`define`` chain."""
    depth = rng.randint(3, 12)
    lines = ["`define F0 x"]
    for i in range(1, depth):
        lines.append(f"`define F{i} `F{i - 1} `F{i - 1}")
    if rng.random() < 0.3:  # close the loop: a macro cycle
        lines[0] = f"`define F0 `F{depth - 1}"
    lines.append(f"`define BOOM `F{depth - 1}")
    return "\n".join(lines) + "\nmodule b; wire w = `BOOM; endmodule\n" + code


def _mut_include_bomb(rng: Random, code: str, includes: dict) -> str:
    """Add mutually-recursive ``\\`include`` files to the file map."""
    chain = rng.randint(2, 5)
    for i in range(chain):
        includes[f"f{i}.vh"] = (
            f'`include "f{(i + 1) % chain}.vh"\n`define I{i} {i}\n'
        )
    return '`include "f0.vh"\n' + code


def _mut_paren_nest(rng: Random, code: str, includes: dict) -> str:
    """Append an expression wrapped in deeply nested parentheses."""
    depth = rng.randint(16, 2000)
    expr = "(" * depth + "1" + ")" * depth
    return code + f"\nmodule p(output o); assign o = {expr}; endmodule\n"


def _mut_ident_blowup(rng: Random, code: str, includes: dict) -> str:
    """Append a declaration with an absurdly long identifier."""
    name = "x" * rng.randint(256, 20000)
    return code + f"\nmodule q; wire {name}; endmodule\n"


#: Name -> mutator registry; names appear in reports and failure replays.
MUTATORS: dict[str, Mutator] = {
    "byte_splice": _mut_byte_splice,
    "token_splice": _mut_token_splice,
    "truncate": _mut_truncate,
    "duplicate": _mut_duplicate,
    "macro_bomb": _mut_macro_bomb,
    "include_bomb": _mut_include_bomb,
    "paren_nest": _mut_paren_nest,
    "ident_blowup": _mut_ident_blowup,
}

#: Every this-many iterations, additionally cross-check cache vs no-cache.
_CACHE_CHECK_EVERY = 7


@dataclass(frozen=True)
class StimulusPlan:
    """Shape of one simulator-differential run's stimulus.

    Derived per iteration from the seeded sim RNG by the simulation
    mutators (:data:`SIM_MUTATORS`); a pure value so a failing iteration
    replays bit-identically.
    """

    #: Clock/evaluation steps to drive.
    steps: int = 4
    #: Cycles whose every input is driven all-X (fast-path demotion).
    x_cycles: tuple[int, ...] = (2,)
    #: Random single-bit flips applied to the drawn vectors.
    perturb: int = 0


SimMutator = Callable[[Random, StimulusPlan], StimulusPlan]


def _sim_mut_cycle_scale(rng: Random, plan: StimulusPlan) -> StimulusPlan:
    """Scale the driven cycle count up (testbench cycle-count scaling)."""
    return replace(plan, steps=min(64, plan.steps * rng.choice((2, 4, 8))))


def _sim_mut_x_inject(rng: Random, plan: StimulusPlan) -> StimulusPlan:
    """Drive all inputs X on an extra random cycle."""
    extra = rng.randrange(max(plan.steps, 1))
    return replace(plan, x_cycles=tuple(sorted(set(plan.x_cycles) | {extra})))


def _sim_mut_stim_perturb(rng: Random, plan: StimulusPlan) -> StimulusPlan:
    """Flip a few random stimulus bits after the base vectors are drawn."""
    return replace(plan, perturb=plan.perturb + rng.randint(1, 4))


#: Simulation-oriented mutator registry (stimulus perturbation, cycle
#: scaling, X injection); names land in ``mutator_counts``.
SIM_MUTATORS: dict[str, SimMutator] = {
    "sim_cycle_scale": _sim_mut_cycle_scale,
    "sim_stim_perturb": _sim_mut_stim_perturb,
    "sim_x_inject": _sim_mut_x_inject,
}


def _derive_sim_plan(rng: Random) -> tuple[StimulusPlan, tuple[str, ...]]:
    """Draw 0-2 simulation mutators and fold them into a plan."""
    plan = StimulusPlan()
    names = sorted(SIM_MUTATORS)
    picked = tuple(rng.choice(names) for _ in range(rng.randint(0, 2)))
    for name in picked:
        plan = SIM_MUTATORS[name](rng, plan)
    return plan, picked


@dataclass(frozen=True)
class FuzzConfig:
    """Parameters of one fuzzing run."""

    seed: int = 0
    iterations: int = 200
    #: Resource budgets applied to every fuzzed compile (tight by
    #: default so adversarial inputs are cut off quickly).
    limits: ResourceLimits = FUZZ_LIMITS
    #: Wall-clock ceiling per fuzzed input, in seconds; an iteration
    #: slower than this is recorded as a hang failure.
    per_input_budget: float = 2.0
    #: Optional chaos integration: a fault injector whose ``compiler``
    #: seam, when drawn as ``garbage``, splices chaos junk into the
    #: fuzzed source before compiling.
    injector: Optional[FaultInjector] = None

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ValueError("iterations must be >= 0")
        if self.per_input_budget <= 0:
            raise ValueError("per_input_budget must be > 0")


@dataclass(frozen=True)
class FuzzFailure:
    """One invariant violation found by the fuzzer."""

    iteration: int
    invariant: str
    detail: str
    mutations: tuple[str, ...]
    #: Head of the offending source, enough to reproduce with the seed.
    snippet: str

    def describe(self) -> str:
        """One-line human-readable account of the violation."""
        muts = "+".join(self.mutations) or "(corpus)"
        return (
            f"iteration {self.iteration} [{muts}] violated "
            f"{self.invariant}: {self.detail}"
        )


@dataclass
class FuzzReport:
    """Outcome of :func:`run_fuzz`: verdicts, failures, statistics."""

    config: FuzzConfig
    #: Per-iteration verdict strings (status + error categories), in
    #: iteration order -- the determinism witness.
    verdicts: list[str] = field(default_factory=list)
    #: Per-iteration "+"-joined mutator names, in iteration order.
    mutations: list[str] = field(default_factory=list)
    failures: list[FuzzFailure] = field(default_factory=list)
    #: How often each mutator ran.
    mutator_counts: dict[str, int] = field(default_factory=dict)
    #: Count of results per status letter (P=pass, F=fail, C=crashed).
    status_counts: dict[str, int] = field(default_factory=dict)
    elapsed: float = 0.0
    slowest: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every invariant held on every iteration."""
        return not self.failures

    def digest(self) -> str:
        """SHA-256 over the mutation and verdict sequences.

        Two runs with the same config must produce the same digest;
        comparing digests is how reproducibility is asserted without
        shipping the full sequences around.
        """
        hasher = hashlib.sha256()
        for mutation, verdict in zip(self.mutations, self.verdicts):
            hasher.update(mutation.encode())
            hasher.update(b"\x00")
            hasher.update(verdict.encode())
            hasher.update(b"\x00")
        return hasher.hexdigest()

    def summary(self) -> str:
        """Multi-line human-readable run summary."""
        lines = [
            f"fuzz seed={self.config.seed} iterations={len(self.verdicts)} "
            f"elapsed={self.elapsed:.2f}s slowest={self.slowest * 1000:.0f}ms",
            "status: " + (
                " ".join(
                    f"{status}={count}"
                    for status, count in sorted(self.status_counts.items())
                ) or "(none)"
            ),
            "mutators: " + (
                " ".join(
                    f"{name}={count}"
                    for name, count in sorted(self.mutator_counts.items())
                ) or "(none)"
            ),
            f"digest: {self.digest()}",
        ]
        if self.failures:
            lines.append(f"FAILURES ({len(self.failures)}):")
            lines.extend("  " + failure.describe() for failure in self.failures)
        else:
            lines.append("all invariants held")
        return "\n".join(lines)


def _verdict(result) -> str:
    """Compact stable verdict for one CompileResult."""
    if result.crashed:
        status = "C"
    elif result.ok:
        status = "P"
    else:
        status = "F"
    cats = ",".join(c.value for c in result.categories)
    return f"{status}:{cats}" if cats else status


def _fuzz_one(
    config: FuzzConfig, iteration: int
) -> tuple[str, dict[str, str], tuple[str, ...], str]:
    """Derive iteration ``iteration``'s input:
    (code, includes, mutations, base snippet).

    Pure function of (seed, iteration) -- this is what makes any failing
    iteration individually replayable.  ``base`` is the unmutated corpus
    snippet the input was derived from; the sandbox differential falls
    back to it when the mutated input no longer elaborates.
    """
    rng = Random(f"fuzz|{config.seed}|{iteration}")
    base = rng.choice(SEED_CORPUS)
    code = base
    includes: dict[str, str] = {}
    names = sorted(MUTATORS)
    picked = tuple(
        rng.choice(names) for _ in range(rng.randint(1, 3))
    )
    for name in picked:
        code = MUTATORS[name](rng, code, includes)
    if config.injector is not None:
        kind = config.injector.decide(
            "compiler.fuzz", f"{config.seed}|{iteration}"
        )
        if kind == "garbage":
            code = GARBAGE_CODE + "\n" + code
    return code, includes, picked, base


def _compare_sandbox_verdicts(verdicts: dict, where: str) -> Optional[tuple[str, str]]:
    """Compare per-engine sandbox verdicts; a failure is a
    ``(invariant, detail)`` pair.  Wall-clock watchdog cutoffs are the
    one nondeterministic budget, so either engine hitting one exempts
    the comparison."""
    if any(v.kind == "wall clock" for v in verdicts.values()):
        return None
    if set(verdicts) != {"interp", "compiled"}:
        missing = "interp" if "interp" in verdicts else "compiled"
        only = verdicts.get("interp") or verdicts.get("compiled")
        return (
            "sandbox-differential",
            f"only {missing} left the sandbox at {where}: {only.summary()}",
        )
    iv, cv = verdicts["interp"], verdicts["compiled"]
    if (iv.category, iv.kind) != (cv.category, cv.kind):
        return (
            "sandbox-differential",
            f"categories differ at {where}: interp={iv.summary()!r} "
            f"compiled={cv.summary()!r}",
        )
    if iv.category == "fail" and iv.detail != cv.detail:
        return (
            "simulator-differential",
            f"{where} errors differ: interp={iv.detail!r} "
            f"compiled={cv.detail!r}",
        )
    return None


def _sim_differential(
    design, limits, rng: Random, plan: Optional[StimulusPlan] = None
) -> Optional[tuple[str, str]]:
    """Cross-check interpreted vs compiled simulation of ``design``.

    Both engines run under :data:`~repro.sim.limits.FUZZ_SIM_LIMITS`
    with a fresh budget tracker each.  Returns ``None`` when the engines
    agree, or an ``(invariant, detail)`` pair: ``sandbox-differential``
    when the sandbox categories/kinds diverge, ``simulator-differential``
    when state, memories, display logs or failure messages do.
    """
    from ..sim.engine import CompiledSimulator
    from ..sim.limits import FUZZ_SIM_LIMITS
    from ..sim.sandbox import classify_exception, run_sandboxed
    from ..sim.simulator import Simulator
    from ..sim.values import Logic

    plan = plan if plan is not None else StimulusPlan()

    sims = {}
    verdicts = {}
    for name, cls in (("interp", Simulator), ("compiled", CompiledSimulator)):
        sim, verdict = run_sandboxed(
            lambda c=cls: c(design, limits=limits, sim_limits=FUZZ_SIM_LIMITS),
            name,
        )
        if verdict is not None:
            verdicts[name] = verdict
        else:
            sims[name] = sim
    if verdicts:
        return _compare_sandbox_verdicts(verdicts, "construction")

    interp, compiled = sims["interp"], sims["compiled"]
    ports = interp.inputs
    stim_seq: list[dict] = []
    for cycle in range(plan.steps):
        stimulus: dict = {}
        for port in ports:
            if cycle in plan.x_cycles:
                stimulus[port.name] = Logic.all_x(port.width)
            else:
                stimulus[port.name] = rng.getrandbits(port.width)
        stim_seq.append(stimulus)
    int_slots = [
        (cycle, port)
        for cycle, stimulus in enumerate(stim_seq)
        for port in ports
        if isinstance(stimulus[port.name], int)
    ]
    for _ in range(plan.perturb if int_slots else 0):
        cycle, port = int_slots[rng.randrange(len(int_slots))]
        stim_seq[cycle][port.name] ^= 1 << rng.randrange(max(port.width, 1))

    for cycle, stimulus in enumerate(stim_seq):
        step_verdicts = {}
        for name, sim in (("interp", interp), ("compiled", compiled)):
            _, verdict = run_sandboxed(
                lambda s=sim: s.step(dict(stimulus)), name
            )
            if verdict is not None:
                step_verdicts[name] = verdict
        if step_verdicts:
            violation = _compare_sandbox_verdicts(step_verdicts, f"step {cycle}")
            return violation
        if dict(interp.state.values) != dict(compiled.state.values):
            diverged = sorted(
                name
                for name, value in interp.state.values.items()
                if compiled.state.values.get(name) != value
            )
            return (
                "simulator-differential",
                f"state diverged at step {cycle}: {diverged[:4]}",
            )
        if interp.state.arrays != compiled.state.arrays:
            return ("simulator-differential", f"memories diverged at step {cycle}")
        if interp.display_log != compiled.display_log:
            return (
                "simulator-differential", f"$display logs diverged at step {cycle}"
            )
    return None


def _sim_cache_check(design, injector) -> Optional[tuple[str, str]]:
    """Run the sandboxed differential testbench twice against a fresh
    verdict cache (with any configured chaos injector scoped in) and
    check the memoization rules: repeated verdicts agree, uncacheable
    (``limit``/``crashed``/injected) verdicts are never stored, and an
    injected raising fault leaves the cache empty."""
    from ..errors import TransientError
    from ..sim.limits import FUZZ_SIM_LIMITS
    from ..sim.testbench import run_differential
    from ..sim.verdict import VerdictCache, use_verdict_cache
    from .faults import use_sim_chaos

    sim_cache = VerdictCache()
    with use_verdict_cache(sim_cache), use_sim_chaos(injector):
        try:
            first = run_differential(
                design, design, samples=4, sim_limits=FUZZ_SIM_LIMITS
            )
            second = run_differential(
                design, design, samples=4, sim_limits=FUZZ_SIM_LIMITS
            )
        except TransientError:
            # An injected simulator fault raised; nothing may have been
            # memoized on the way out.
            if len(sim_cache):
                return (
                    "sim-chaos-transparency",
                    "injected sim fault left entries in the verdict cache",
                )
            return None
    injected = (first.verdict is not None and first.verdict.injected) or (
        second.verdict is not None and second.verdict.injected
    )
    if not injected:
        first_cat = first.verdict.category if first.verdict else None
        second_cat = second.verdict.category if second.verdict else None
        if (first.passed, first_cat) != (second.passed, second_cat):
            return (
                "sim-cache-transparency",
                f"repeated verdicts differ: ({first.passed}, {first_cat}) "
                f"!= ({second.passed}, {second_cat})",
            )
    uncacheable = all(
        result.verdict is None or not result.verdict.cacheable
        for result in (first, second)
    )
    if uncacheable and len(sim_cache):
        return (
            "sim-cache-transparency",
            "uncacheable (limit/crashed/injected) verdict was memoized",
        )
    return None


def run_fuzz(config: FuzzConfig | None = None) -> FuzzReport:
    """Run the fuzzer and return a :class:`FuzzReport`.

    Never raises for input-triggered reasons: invariant violations are
    collected as :class:`FuzzFailure` records (``report.ok`` is the
    pass/fail signal), so the harness itself honours the never-crash
    contract it is checking.
    """
    from ..diagnostics.compiler import compile_source
    from ..verilog.pipeline import (
        CompileSession,
        StageCache,
        result_fingerprint,
        use_stage_cache,
    )
    from .cache import CompileCache, no_compile_cache

    config = config if config is not None else FuzzConfig()
    report = FuzzReport(config=config)
    start = time.monotonic()

    # The pipeline-differential invariant holds one warm session (and
    # one private stage cache) across the entire run: every iteration's
    # input is an "edit" of the previous one from the session's point of
    # view, so incremental lex resume and parse-segment replay are
    # exercised against maximally hostile sources.
    session = CompileSession(limits=config.limits)
    stage_cache = StageCache()
    # Mutated inputs rarely survive elaboration, so the sandbox
    # differential would starve if it only ran on them.  Each corpus
    # snippet's clean design is compiled once and reused as the
    # fallback simulation target (None = snippet itself is broken).
    base_designs: dict[str, object] = {}

    for iteration in range(config.iterations):
        code, includes, picked, base = _fuzz_one(config, iteration)
        label = "+".join(picked)
        report.mutations.append(label)
        for name in picked:
            report.mutator_counts[name] = report.mutator_counts.get(name, 0) + 1

        def fail(invariant: str, detail: str) -> None:
            report.failures.append(
                FuzzFailure(
                    iteration=iteration,
                    invariant=invariant,
                    detail=detail,
                    mutations=picked,
                    snippet=code[:120],
                )
            )

        tick = time.monotonic()
        results = {}
        try:
            with no_compile_cache():
                for flavor in ("iverilog", "quartus"):
                    result = compile_source(
                        code,
                        flavor=flavor,
                        include_files=includes or None,
                        limits=config.limits,
                    )
                    if not isinstance(result.log, str):
                        fail("render", f"{flavor} log is not a string")
                    results[flavor] = result
        except BaseException as exc:  # the one thing that must not happen
            fail("no-exception", f"{type(exc).__name__}: {exc}")
            report.verdicts.append("X")
            continue
        took = time.monotonic() - tick
        report.slowest = max(report.slowest, took)
        if took > config.per_input_budget:
            fail(
                "bounded-time",
                f"{took:.2f}s > {config.per_input_budget:.2f}s budget",
            )

        iv, qu = results["iverilog"], results["quartus"]
        if (iv.ok, iv.crashed) != (qu.ok, qu.crashed):
            fail(
                "flavor-agreement",
                f"iverilog (ok={iv.ok}, crashed={iv.crashed}) != "
                f"quartus (ok={qu.ok}, crashed={qu.crashed})",
            )

        try:
            with use_stage_cache(stage_cache):
                for flavor in ("iverilog", "quartus"):
                    warm = session.compile(
                        code, flavor=flavor, include_files=includes or None
                    )
                    if result_fingerprint(warm) != result_fingerprint(
                        results[flavor]
                    ):
                        fail(
                            "pipeline-differential",
                            f"warm CompileSession diverged from cold "
                            f"compile_source ({flavor})",
                        )
        except BaseException as exc:
            fail("no-exception", f"session path: {type(exc).__name__}: {exc}")

        design = iv.elaborated if iv.ok else None
        if design is None:
            if base not in base_designs:
                base_result = compile_source(base, limits=config.limits)
                base_designs[base] = (
                    base_result.elaborated if base_result.ok else None
                )
            design = base_designs[base]
        if design is not None:
            sim_rng = Random(f"simdiff|{config.seed}|{iteration}")
            plan, sim_picked = _derive_sim_plan(sim_rng)
            for name in sim_picked:
                report.mutator_counts[name] = (
                    report.mutator_counts.get(name, 0) + 1
                )
            try:
                violation = _sim_differential(
                    design, config.limits, sim_rng, plan
                )
                if violation is not None:
                    fail(*violation)
            except BaseException as exc:
                fail(
                    "no-exception",
                    f"sim path: {type(exc).__name__}: {exc}",
                )

        verdict = _verdict(iv)
        report.verdicts.append(verdict)
        status = verdict.split(":", 1)[0]
        report.status_counts[status] = report.status_counts.get(status, 0) + 1

        if iteration % _CACHE_CHECK_EVERY == 0:
            try:
                cache = CompileCache(maxsize=8)
                first = cache.compile(
                    code, include_files=includes or None, limits=config.limits
                )
                second = cache.compile(
                    code, include_files=includes or None, limits=config.limits
                )
                if second is not first:
                    fail("cache-identity", "second lookup missed the cache")
                if _verdict(first) != verdict:
                    fail(
                        "cache-transparency",
                        f"cached verdict {_verdict(first)!r} != "
                        f"uncached {verdict!r}",
                    )
            except BaseException as exc:
                fail("no-exception", f"cache path: {type(exc).__name__}: {exc}")

        if (
            iteration % _CACHE_CHECK_EVERY == 3
            and iv.ok
            and iv.elaborated is not None
        ):
            try:
                violation = _sim_cache_check(iv.elaborated, config.injector)
                if violation is not None:
                    fail(*violation)
            except BaseException as exc:
                fail(
                    "no-exception",
                    f"sim cache path: {type(exc).__name__}: {exc}",
                )

    report.elapsed = time.monotonic() - start
    return report
