"""Content-addressed compile cache.

Every experiment in ``repro.eval`` is dominated by repeated
compile/simulate cycles over a small working set of sources: the golden
reference of each problem is recompiled for every one of thousands of
``evaluate_sample`` calls, repeated trials re-feed the same broken entry
to the compiler, and the simulated sampler emits byte-identical
completions across runs.  ``compile_source`` is a pure function of
``(code, name, flavor, include_files, limits)``, so its results can be
memoized behind a content address.

:class:`CompileCache` keys results by a SHA-256 digest of exactly those
inputs (the compiler *flavor* is part of the key: an iverilog-rendered
and a Quartus-rendered result of the same source must never collide),
holds them in an LRU-bounded map, and tracks hit/miss/eviction
statistics so observability ships with the optimization.

Injection point
---------------

A process-wide *active* cache is consulted by :func:`cached_compile`,
which is what the hot paths (``repro.eval.runner``, the agents'
``Compiler`` facade, the dataset curation pipeline, ...) call instead of
``compile_source``.  The default active cache is enabled at import time;
:func:`use_compile_cache` scopes a fresh (or no) cache to a ``with``
block, and :func:`set_active_cache` swaps it explicitly:

>>> with use_compile_cache() as cache:
...     run_table2(problems)
...     print(cache.stats.hits, cache.stats.misses)

Caching changes no observable behaviour: compilation is deterministic,
and results are treated as immutable by every consumer (the codebase
already re-uses one elaborated design across many simulator instances).
"""

from __future__ import annotations

import hashlib
import threading
from collections import Counter, OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Optional

if TYPE_CHECKING:  # runtime import is deferred to avoid a cycle with
    # repro.diagnostics, whose Compiler facade routes through this cache.
    from ..diagnostics.compiler import CompileResult
    from ..verilog.limits import ResourceLimits

#: Default LRU bound of a :class:`CompileCache`.  Full-scale experiment
#: runs touch a few thousand distinct sources; elaborated designs for
#: the corpus are small (a few KB each), so this keeps the whole working
#: set resident without unbounded growth on adversarial workloads.
DEFAULT_MAXSIZE = 4096


def compile_key(
    code: str,
    name: str = "main.v",
    flavor: str = "iverilog",
    include_files: Optional[dict[str, str]] = None,
    limits: "Optional[ResourceLimits]" = None,
) -> str:
    """Content address of one compiler invocation.

    A SHA-256 digest over every input ``compile_source`` consumes.  The
    flavor participates in the key because the rendered feedback (and
    the ``CompileResult.flavor`` attribute the agents read) differs per
    flavor even when the diagnostics are identical; the resource limits
    participate because the same source may compile cleanly under the
    defaults yet hit a ``RESOURCE_LIMIT`` diagnostic under tighter
    budgets (``None`` normalizes to the defaults, so explicit-default
    and omitted limits share entries).
    """
    from ..verilog.limits import DEFAULT_LIMITS

    hasher = hashlib.sha256()
    effective = limits if limits is not None else DEFAULT_LIMITS
    for part in (flavor, name, repr(effective)):
        hasher.update(part.encode())
        hasher.update(b"\x00")
    for inc_name in sorted(include_files or {}):
        hasher.update(inc_name.encode())
        hasher.update(b"\x00")
        hasher.update(include_files[inc_name].encode())  # type: ignore[index]
        hasher.update(b"\x00")
    hasher.update(code.encode())
    return hasher.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`CompileCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Concurrent lookups that waited for an in-flight compile of the
    #: same key instead of duplicating it (single-flight coalescing).
    coalesced: int = 0
    #: Per-content-address miss counts; a key with more than one miss
    #: was recompiled after an eviction (or raced in a thread pool).
    misses_by_key: Counter = field(default_factory=Counter)

    @property
    def lookups(self) -> int:
        """Total cache consultations."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def compiles_avoided(self) -> int:
        """Number of full front-end runs the cache saved (== hits)."""
        return self.hits

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (used by ``run_full_report``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "coalesced_waits": self.coalesced,
            "compiles_avoided": self.compiles_avoided,
            "hit_rate": round(self.hit_rate, 4),
        }


class CompileCache:
    """LRU-bounded, thread-safe memo of ``compile_source`` results.

    >>> cache = CompileCache(maxsize=512)
    >>> result = cache.compile("module m; endmodule", flavor="quartus")
    >>> cache.stats.misses, cache.stats.hits
    (1, 0)
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, CompileResult]" = OrderedDict()
        self._lock = threading.Lock()
        #: key -> event set when that key's in-flight compile finishes
        #: (single-flight coalescing of concurrent misses).
        self._inflight: dict[str, threading.Event] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def compile(
        self,
        code: str,
        name: str = "main.v",
        flavor: str = "iverilog",
        include_files: Optional[dict[str, str]] = None,
        limits: "Optional[ResourceLimits]" = None,
        compute: Optional[Callable[[], "CompileResult"]] = None,
    ) -> "CompileResult":
        """Return the (possibly cached) result of compiling ``code``.

        ``compute`` overrides how a *miss* is materialized (e.g. the
        ``Compiler`` facade supplies its incremental
        :class:`~repro.verilog.pipeline.CompileSession`); it must be
        bit-identical to ``compile_source`` on the same inputs -- the
        cache key stays a pure content address either way.
        """
        key = compile_key(
            code, name=name, flavor=flavor, include_files=include_files,
            limits=limits,
        )
        # Compilation happens outside the lock, but concurrent misses on
        # the same key are *coalesced*: the first thread becomes the
        # compiling leader (it registers an in-flight event), every
        # other thread waits on that event and then re-reads the entry
        # -- one full front-end run per key, not one per thread.
        while True:
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return cached
                leader = key not in self._inflight
                if leader:
                    self._inflight[key] = threading.Event()
                    self.stats.misses += 1
                    self.stats.misses_by_key[key] += 1
                    break
                event = self._inflight[key]
                self.stats.coalesced += 1
            event.wait()

        from ..diagnostics.compiler import compile_source

        try:
            if compute is not None:
                result = compute()
            else:
                result = compile_source(
                    code, name=name, flavor=flavor, include_files=include_files,
                    limits=limits,
                )
            with self._lock:
                self._entries[key] = result
                self._entries.move_to_end(key)
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
            return result
        finally:
            # Always release the waiters -- even if compile_source raised
            # (it should not, post never-crash boundary): a waiter that
            # finds no entry simply becomes the next leader.
            with self._lock:
                self._inflight.pop(key).set()

    def contains(
        self,
        code: str,
        name: str = "main.v",
        flavor: str = "iverilog",
        include_files: Optional[dict[str, str]] = None,
        limits: "Optional[ResourceLimits]" = None,
    ) -> bool:
        """Whether a result for this exact invocation is resident."""
        key = compile_key(
            code, name=name, flavor=flavor, include_files=include_files,
            limits=limits,
        )
        with self._lock:
            return key in self._entries

    def misses_for(
        self,
        code: str,
        name: str = "main.v",
        flavor: str = "iverilog",
        include_files: Optional[dict[str, str]] = None,
        limits: "Optional[ResourceLimits]" = None,
    ) -> int:
        """How many times this exact invocation missed (compiled)."""
        key = compile_key(
            code, name=name, flavor=flavor, include_files=include_files,
            limits=limits,
        )
        with self._lock:
            return self.stats.misses_by_key.get(key, 0)

    def clear(self) -> None:
        """Drop all entries and reset the statistics."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()


#: The process-wide default cache, active from import time so every
#: caller of :func:`cached_compile` benefits without opting in.
DEFAULT_CACHE = CompileCache()

_active_cache: Optional[CompileCache] = DEFAULT_CACHE
_active_lock = threading.Lock()


def get_active_cache() -> Optional[CompileCache]:
    """The cache :func:`cached_compile` currently consults (or None)."""
    return _active_cache


def set_active_cache(cache: Optional[CompileCache]) -> Optional[CompileCache]:
    """Install ``cache`` as the active cache; returns the previous one.

    Pass ``None`` to disable caching entirely (every
    :func:`cached_compile` call falls through to ``compile_source``).
    """
    global _active_cache
    with _active_lock:
        previous = _active_cache
        _active_cache = cache
        return previous


@contextmanager
def use_compile_cache(
    cache: Optional[CompileCache] = None, maxsize: int = DEFAULT_MAXSIZE
) -> Iterator[CompileCache]:
    """Scope a compile cache to a ``with`` block.

    With no argument a fresh :class:`CompileCache` is created -- handy
    for measuring exactly what one experiment compiles.  The previously
    active cache is restored on exit.
    """
    scoped = cache if cache is not None else CompileCache(maxsize=maxsize)
    previous = set_active_cache(scoped)
    try:
        yield scoped
    finally:
        set_active_cache(previous)


@contextmanager
def no_compile_cache() -> Iterator[None]:
    """Disable compile caching inside a ``with`` block (cold-path
    measurements, cache-bypass debugging)."""
    previous = set_active_cache(None)
    try:
        yield
    finally:
        set_active_cache(previous)


def cached_compile(
    code: str,
    name: str = "main.v",
    flavor: str = "iverilog",
    include_files: Optional[dict[str, str]] = None,
    limits: "Optional[ResourceLimits]" = None,
    compute: Optional[Callable[[], "CompileResult"]] = None,
) -> "CompileResult":
    """Drop-in replacement for ``compile_source`` that consults the
    active :class:`CompileCache` (and falls through when none is set).

    ``compute``, when given, materializes misses (and the no-cache
    fallback) instead of ``compile_source`` -- the hook the ``Compiler``
    facade uses to route through its incremental pipeline session.
    """
    cache = _active_cache
    if cache is None:
        if compute is not None:
            return compute()
        from ..diagnostics.compiler import compile_source

        return compile_source(
            code, name=name, flavor=flavor, include_files=include_files,
            limits=limits,
        )
    return cache.compile(
        code, name=name, flavor=flavor, include_files=include_files,
        limits=limits, compute=compute,
    )
