"""Bounded retries with deterministic exponential backoff.

Every future API-backed backend shares the same failure profile: calls
that time out, rate-limit, or hiccup transiently.  This module gives the
agent stack one uniform answer:

* :class:`RetryPolicy` -- how often to retry, how long to back off
  (exponential with *seeded* jitter, so a retry schedule is reproducible
  at a fixed seed), and an optional per-call timeout budget;
* :func:`call_with_retry` -- run a callable under a policy, retrying
  only :class:`repro.errors.TransientError` faults;
* :class:`RetryingRepairModel` / :class:`RetryingLLMClient` /
  :class:`RetryingCompiler` -- transparent wrappers that apply a policy
  around ``RepairModel.start``/``step``, ``LLMClient.complete`` and
  ``Compiler.compile`` respectively.

Determinism: backoff delays derive from ``random.Random(seed | key)``,
never from wall-clock entropy, so tests can assert the exact schedule.
The timeout budget is *cooperative* -- the wrapped call runs to
completion and its elapsed time is checked against the budget (callers
with genuinely preemptible transports should also pass the budget down
to the transport).  An over-budget call counts as a retryable
:class:`repro.errors.LLMTimeoutError`.

Deadlines: when an ambient request deadline is in scope
(:func:`repro.service.deadline.use_deadline`), the retry loop becomes
deadline-aware.  The two budgets are deliberately distinct outcomes: a
*per-call* overrun is a transient backend fault (retry it), an expired
*deadline* means the caller's overall budget is gone -- the loop raises
:class:`repro.errors.DeadlineExceededError` (not transient, never
retried) before dispatching an attempt, instead of a backoff sleep
that would end past the deadline, and after a call that ran the
deadline out.  A deadline-free scope behaves exactly as before.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Optional, TypeVar

from ..errors import (
    DeadlineExceededError,
    LLMTimeoutError,
    RetryExhaustedError,
    TransientError,
)
from ..service.deadline import current_deadline

if TYPE_CHECKING:  # typing only: keep the runtime layer import-light
    from ..diagnostics.compiler import CompileResult
    from ..llm.base import ChatMessage, RepairStep

T = TypeVar("T")

#: Injectable sleep/clock hooks (tests pass fakes for instant runs).
SleepFn = Callable[[float], None]
ClockFn = Callable[[], float]


def _digest(text: str) -> str:
    """Short stable digest used to key backoff schedules by content."""
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _update_length_prefixed(hasher, text: str) -> None:
    """Feed one field into ``hasher`` with an 8-byte length prefix, so
    adjacent fields can never alias across their boundary."""
    data = text.encode()
    hasher.update(len(data).to_bytes(8, "big"))
    hasher.update(data)


def messages_key(messages: list["ChatMessage"], temperature: float) -> str:
    """Content key for one raw chat-completion call.

    Each message contributes its ``(role, content)`` pair length-
    prefixed, and the temperature participates, so ``["a|b"]`` never
    collides with ``["a", "b"]``, a system-vs-user swap draws a fresh
    backoff/fault decision, and so does a temperature change.  Shared
    by the retry and chaos layers: both must key identically or a
    transient chaos fault could clear on a key the retry loop never
    re-draws.
    """
    hasher = hashlib.sha256()
    hasher.update(repr(float(temperature)).encode())
    hasher.update(len(messages).to_bytes(8, "big"))
    for message in messages:
        _update_length_prefixed(hasher, message.role)
        _update_length_prefixed(hasher, message.content)
    return hasher.hexdigest()[:16]


def guidance_key(guidance: list) -> str:
    """Content key over retrieved guidance entries.

    Two repair turns that differ only in what the retriever surfaced
    are different model calls and must draw independent backoff and
    fault decisions; every identifying field of each entry participates,
    length-prefixed (same anti-aliasing rule as :func:`messages_key`).
    """
    hasher = hashlib.sha256()
    hasher.update(len(guidance).to_bytes(8, "big"))
    for entry in guidance:
        category = getattr(entry, "category", None)
        _update_length_prefixed(hasher, getattr(category, "value", "") or "")
        for attribute in ("compiler", "log_pattern", "guidance", "demonstration"):
            _update_length_prefixed(hasher, getattr(entry, attribute, "") or "")
    return hasher.hexdigest()[:16]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget + deterministic backoff schedule.

    ``max_retries`` counts *re*-tries: a call gets ``max_retries + 1``
    attempts total.  ``timeout`` is the per-call budget in seconds
    (``None`` = unlimited).  The delay before retry ``i`` is
    ``base_delay * 2**i`` capped at ``max_delay``, scaled by a seeded
    jitter factor in ``[1 - jitter/2, 1 + jitter/2]``.
    """

    max_retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    timeout: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")

    def with_seed(self, seed: int) -> "RetryPolicy":
        """The same policy with a different jitter seed."""
        from dataclasses import replace

        return replace(self, seed=seed)

    def delays(self, key: str = "") -> Iterator[float]:
        """The exact backoff schedule for ``key`` -- ``max_retries``
        delays, deterministic at a fixed ``(seed, key)``."""
        rng = random.Random(f"backoff|{self.seed}|{key}")
        for attempt in range(self.max_retries):
            delay = min(self.max_delay, self.base_delay * (2.0 ** attempt))
            yield delay * (1.0 - self.jitter / 2.0 + self.jitter * rng.random())


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    key: str = "",
    sleep: SleepFn = time.sleep,
    clock: ClockFn = time.monotonic,
) -> T:
    """Run ``fn`` under ``policy``; retry transient faults, bounded.

    Only :class:`~repro.errors.TransientError` (and subclasses, e.g.
    timeouts and injected chaos) trigger a retry -- anything else is a
    real bug and propagates unchanged.  When the budget runs out the
    last transient fault is wrapped in
    :class:`~repro.errors.RetryExhaustedError`.

    Under an ambient request deadline
    (:func:`repro.service.deadline.current_deadline`) the loop
    additionally refuses to dispatch an attempt, or to sleep a backoff,
    once the deadline is (or would be) expired: it raises
    :class:`~repro.errors.DeadlineExceededError` instead, carrying the
    stage the deadline fired at.  An expired deadline is never retried.
    """
    schedule = policy.delays(key)
    attempts = 0
    last: Optional[Exception] = None
    while True:
        deadline = current_deadline()
        if deadline is not None:
            deadline.check(stage="retry-dispatch")
        attempts += 1
        started = clock()
        try:
            result = fn()
        except TransientError as exc:
            last = exc
        else:
            elapsed = clock() - started
            if policy.timeout is None or elapsed <= policy.timeout:
                return result
            if deadline is not None and deadline.expired():
                # The call both blew its per-call budget and ran the
                # request's deadline out: the caller's budget is gone,
                # so surface the typed deadline outcome -- a retry
                # could never be observed.
                deadline.check(stage="retry-call")
            last = LLMTimeoutError(
                f"call took {elapsed:.3f}s, budget is {policy.timeout:.3f}s"
            )
        if attempts > policy.max_retries:
            raise RetryExhaustedError(
                f"gave up after {attempts} attempt(s): {last}",
                attempts=attempts,
                last_error=last,
            ) from last
        delay = next(schedule, policy.max_delay)
        if deadline is not None and not deadline.allows(delay):
            raise DeadlineExceededError(
                f"deadline expires during retry backoff "
                f"({delay:.3f}s sleep, {max(0.0, deadline.remaining()):.3f}s "
                f"left) after {attempts} attempt(s): {last}",
                stage="retry-backoff",
            ) from last
        sleep(delay)


class RetryingRepairModel:
    """A :class:`~repro.llm.base.RepairModel` wrapper that retries
    ``start`` and every session ``step`` under a :class:`RetryPolicy`.

    Transparent on the happy path: a model that never raises behaves
    bit-identically wrapped or not (no sleeps, no extra calls).
    """

    def __init__(
        self,
        inner,
        policy: RetryPolicy,
        sleep: SleepFn = time.sleep,
        clock: ClockFn = time.monotonic,
    ):
        self.inner = inner
        self.policy = policy
        self._sleep = sleep
        self._clock = clock

    @property
    def name(self) -> str:
        """The wrapped model's name (the wrapper is an implementation
        detail, not a different model)."""
        return self.inner.name

    def with_seed(self, seed: int) -> "RetryingRepairModel":
        """Re-seed both the wrapped model (when it supports it) and the
        backoff jitter."""
        inner = self.inner
        reseed = getattr(inner, "with_seed", None)
        if callable(reseed):
            inner = reseed(seed)
        return RetryingRepairModel(
            inner, self.policy.with_seed(seed), sleep=self._sleep, clock=self._clock
        )

    def start(self, code: str, flavor: str, use_rag: bool) -> "RetryingRepairSession":
        """Open a session on the wrapped model, retrying transient
        failures of ``start`` itself."""
        session = call_with_retry(
            lambda: self.inner.start(code, flavor, use_rag),
            self.policy,
            key=f"start|{_digest(code)}",
            sleep=self._sleep,
            clock=self._clock,
        )
        return RetryingRepairSession(session, self.policy, self._sleep, self._clock)


class RetryingRepairSession:
    """Session counterpart of :class:`RetryingRepairModel`."""

    def __init__(self, inner, policy: RetryPolicy, sleep: SleepFn, clock: ClockFn):
        self.inner = inner
        self.policy = policy
        self._sleep = sleep
        self._clock = clock

    def step(self, code: str, feedback: str, guidance: list) -> "RepairStep":
        """One retried model turn (keyed by turn content, so the backoff
        schedule is reproducible per call site).  Guidance participates
        in the key: two turns differing only in retrieved guidance are
        distinct calls with their own backoff schedule and transient-
        fault budget."""
        return call_with_retry(
            lambda: self.inner.step(code, feedback, guidance),
            self.policy,
            key=f"step|{_digest(code)}|{_digest(feedback)}|{guidance_key(guidance)}",
            sleep=self._sleep,
            clock=self._clock,
        )

    def observe(self, success: bool) -> None:
        """Forward the agent's per-iteration outcome signal to sessions
        that route on it (the pool's tier-escalation policy); a no-op
        for sessions that do not."""
        notice = getattr(self.inner, "observe", None)
        if callable(notice):
            notice(success)


class RetryingLLMClient:
    """An :class:`~repro.llm.base.LLMClient` wrapper retrying
    ``complete`` -- the raw-API analogue of
    :class:`RetryingRepairModel` for API-backed backends
    (see :mod:`repro.llm.openai_stub`)."""

    def __init__(
        self,
        inner,
        policy: RetryPolicy,
        sleep: SleepFn = time.sleep,
        clock: ClockFn = time.monotonic,
    ):
        self.inner = inner
        self.policy = policy
        self._sleep = sleep
        self._clock = clock

    def complete(self, messages: list["ChatMessage"], temperature: float = 0.4) -> str:
        """One retried chat completion, keyed role- and temperature-
        aware (see :func:`messages_key`) so rearranged conversations or
        resampled temperatures never share a backoff schedule."""
        key = "complete|" + messages_key(messages, temperature)
        return call_with_retry(
            lambda: self.inner.complete(messages, temperature=temperature),
            self.policy,
            key=key,
            sleep=self._sleep,
            clock=self._clock,
        )


class RetryingCompiler:
    """Compiler-facade wrapper retrying ``compile``.

    The in-process compiler is deterministic and never raises transient
    faults, so this is a no-op in production; it exists so chaos tests
    can exercise the *agent's* behaviour when a compile service flakes
    (the deployment shape every API-backed backend will have).
    """

    def __init__(
        self,
        inner,
        policy: RetryPolicy,
        sleep: SleepFn = time.sleep,
        clock: ClockFn = time.monotonic,
    ):
        self.inner = inner
        self.policy = policy
        self._sleep = sleep
        self._clock = clock

    @property
    def flavor(self) -> str:
        """The wrapped compiler's feedback flavour."""
        return self.inner.flavor

    def compile(self, code: str) -> "CompileResult":
        """One retried compiler invocation."""
        return call_with_retry(
            lambda: self.inner.compile(code),
            self.policy,
            key=f"compile|{_digest(code)}",
            sleep=self._sleep,
            clock=self._clock,
        )
