"""Graceful shutdown: first signal drains, second signal aborts.

An operator's Ctrl-C (or an orchestrator's SIGTERM) during a
hundreds-of-trials report run should not throw completed work away.
:class:`GracefulShutdown` installs SIGINT/SIGTERM handlers with the
classic two-stage contract:

* **first signal** -- set a flag (polled by
  :meth:`repro.runtime.ParallelRunner.map` via ``should_stop``): stop
  dispatching new trials, let in-flight workers drain and journal their
  results, then unwind with :class:`~repro.errors.RunInterrupted` so the
  CLI exits ``128 + signum`` with a resumable checkpoint and a clear
  message;
* **second signal** -- the operator means it: hard-exit immediately
  (``os._exit``), skipping pool teardown that might itself hang.  The
  journal is safe by construction -- every completed trial was fsync'd
  when it was recorded.

The handler is a context manager and restores the previous handlers on
exit, so library callers can scope it tightly around a run.
"""

from __future__ import annotations

import os
import signal
import sys
from types import FrameType
from typing import Callable, Iterable, Optional

#: Signals a durable run treats as shutdown requests.
DEFAULT_SIGNALS = (signal.SIGINT, signal.SIGTERM)


def _default_notify(message: str) -> None:
    """Print a shutdown notice to stderr (never stdout: report output
    may be piped)."""
    print(message, file=sys.stderr, flush=True)


class GracefulShutdown:
    """Two-stage SIGINT/SIGTERM handler for durable runs.

    >>> with GracefulShutdown() as shutdown:
    ...     run_full_report(..., should_stop=shutdown.requested)
    """

    def __init__(
        self,
        signals: Iterable[int] = DEFAULT_SIGNALS,
        notify: Callable[[str], None] = _default_notify,
        hard_exit: Callable[[int], None] = os._exit,
        on_request: Optional[Callable[[int], None]] = None,
    ):
        """``notify`` and ``hard_exit`` are injectable for tests (the
        default hard exit is ``os._exit(128 + signum)``).

        ``on_request`` is invoked (from the signal handler, with the
        signal number) exactly once, on the *first* signal -- the hook
        an event-loop caller uses to wake itself up instead of polling
        :meth:`requested` (the repair service passes
        ``loop.call_soon_threadsafe`` glue here).  Batch runs, which
        already poll the flag between dispatches, leave it None.
        """
        self.signals = tuple(signals)
        self._notify = notify
        self._hard_exit = hard_exit
        self._on_request = on_request
        self._previous: dict[int, object] = {}
        self._requested = False
        #: The first signal received (None until then).
        self.signum: Optional[int] = None

    def requested(self) -> bool:
        """Whether a shutdown has been requested (``should_stop`` hook)."""
        return self._requested

    def handler(self, signum: int, frame: Optional[FrameType] = None) -> None:
        """The installed signal handler (public so tests can drive it)."""
        if self._requested:
            self._notify(
                f"second signal ({signal.Signals(signum).name}): hard exit "
                "(completed trials are already journaled)"
            )
            self._hard_exit(128 + signum)
            return  # only reached with an injected hard_exit
        self._requested = True
        self.signum = signum
        self._notify(
            f"{signal.Signals(signum).name} received: finishing in-flight "
            "trials, flushing the journal, then exiting with a resumable "
            "checkpoint (signal again to abort hard)"
        )
        if self._on_request is not None:
            self._on_request(signum)

    def __enter__(self) -> "GracefulShutdown":
        """Install the handlers, remembering the previous ones."""
        for signum in self.signals:
            self._previous[signum] = signal.getsignal(signum)
            signal.signal(signum, self.handler)
        return self

    def __exit__(self, *exc_info) -> None:
        """Restore the previous handlers."""
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)  # type: ignore[arg-type]
        self._previous.clear()
