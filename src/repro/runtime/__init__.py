"""Runtime substrate: compile memoization + parallel experiment fan-out.

Two pillars every experiment driver in :mod:`repro.eval` is built on:

* :class:`CompileCache` / :func:`cached_compile` -- a content-addressed
  (SHA-256 of source + flavor + includes), LRU-bounded, statistics-
  tracking memo of ``compile_source`` results, with a process-wide
  injection point so hot paths stop re-elaborating identical sources;
* :class:`ParallelRunner` -- an ordered, deterministic ``map`` over
  independent work units across serial / thread / process backends,
  selected via ``RTLFixerConfig.jobs`` or the CLI ``--jobs`` flag.
"""

from .cache import (
    DEFAULT_CACHE,
    DEFAULT_MAXSIZE,
    CacheStats,
    CompileCache,
    cached_compile,
    compile_key,
    get_active_cache,
    no_compile_cache,
    set_active_cache,
    use_compile_cache,
)
from .executor import ParallelRunner, resolve_jobs

__all__ = [
    "CacheStats",
    "CompileCache",
    "DEFAULT_CACHE",
    "DEFAULT_MAXSIZE",
    "ParallelRunner",
    "cached_compile",
    "compile_key",
    "get_active_cache",
    "no_compile_cache",
    "resolve_jobs",
    "set_active_cache",
    "use_compile_cache",
]
