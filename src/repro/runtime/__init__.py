"""Runtime substrate: compile memoization, parallel fan-out, robustness.

The pillars every experiment driver in :mod:`repro.eval` is built on:

* :class:`CompileCache` / :func:`cached_compile` -- a content-addressed
  (SHA-256 of source + flavor + includes), LRU-bounded, statistics-
  tracking memo of ``compile_source`` results, with a process-wide
  injection point so hot paths stop re-elaborating identical sources;
* :class:`ParallelRunner` -- an ordered, deterministic ``map`` over
  independent work units across serial / thread / process backends,
  selected via ``RTLFixerConfig.jobs`` or the CLI ``--jobs`` flag, with
  failure isolation (``on_error="collect"`` -> :class:`WorkFailure`
  records) or prompt aborts (``on_error="raise"`` cancels pending work);
* :class:`RetryPolicy` + the ``Retrying*`` wrappers -- bounded retries
  with deterministic, seeded exponential backoff around the LLM and
  compiler seams;
* :class:`FaultInjector` + the ``Chaos*`` wrappers -- deterministic
  fault injection so every failure path above is testable at a fixed
  seed;
* :func:`run_fuzz` -- the seeded corpus fuzzer that continuously
  prosecutes the compiler front-end's never-crash/never-hang contract
  (``rtlfixer fuzz``);
* :class:`Journal` / :class:`RunState` / :class:`RunContext` -- the
  durable-run subsystem: a crash-safe CRC32 JSONL trial journal with
  torn-tail recovery, content-addressed trial checkpoints
  (:func:`unit_key` / :func:`config_digest`), and the resume-aware
  durable map every experiment driver routes through;
* :class:`CircuitBreaker` -- trips after N consecutive non-transient
  failures and fails the rest of a run fast as journaled SKIPPED
  trials (retry handles transients, the breaker handles persistent
  outages);
* :class:`GracefulShutdown` -- two-stage SIGINT/SIGTERM handling:
  first signal drains and checkpoints, second hard-exits;
* :func:`atomic_write_text` / :func:`atomic_write_json` -- torn-write-
  proof persistence for every run-directory artifact.
"""

from .breaker import CircuitBreaker
from .checkpoint import (
    RunContext,
    RunState,
    config_digest,
    content_digest,
    decode_payload,
    encode_payload,
    unit_key,
)
from .journal import Journal, JournalRecovery
from .persist import atomic_write_json, atomic_write_text
from .shutdown import GracefulShutdown

from .cache import (
    DEFAULT_CACHE,
    DEFAULT_MAXSIZE,
    CacheStats,
    CompileCache,
    cached_compile,
    compile_key,
    get_active_cache,
    no_compile_cache,
    set_active_cache,
    use_compile_cache,
)

# Stage-granular counterpart of the whole-result compile cache: the
# staged pipeline's artifact cache and incremental CompileSession
# (defined in repro.verilog.pipeline, re-exported here beside the
# runtime's other caching/observability surface).
from ..verilog.pipeline import (
    CompileSession,
    PipelineStats,
    StageCache,
    get_active_stage_cache,
    no_stage_cache,
    set_active_stage_cache,
    use_stage_cache,
)
from .executor import (
    ParallelRunner,
    WorkFailure,
    isolable,
    partition_failures,
    resolve_jobs,
)
from .fuzz import (
    MUTATORS,
    SEED_CORPUS,
    SIM_MUTATORS,
    FuzzConfig,
    FuzzFailure,
    FuzzReport,
    StimulusPlan,
    run_fuzz,
)
from .faults import (
    GARBAGE_CODE,
    ChaosCompiler,
    ChaosLLMClient,
    ChaosRepairModel,
    FaultInjector,
    FaultSpec,
    get_active_sim_injector,
    use_sim_chaos,
)
from .retry import (
    RetryingCompiler,
    RetryingLLMClient,
    RetryingRepairModel,
    RetryPolicy,
    call_with_retry,
    guidance_key,
    messages_key,
)
from .accounting import (
    DEFAULT_TOKEN_COUNTER,
    BackendUsage,
    TokenCounter,
    estimate_tokens,
    get_active_token_counter,
    set_active_token_counter,
    use_token_counter,
)
from .limiter import ConcurrencyGate, TokenBucket

__all__ = [
    "BackendUsage",
    "CacheStats",
    "ConcurrencyGate",
    "DEFAULT_TOKEN_COUNTER",
    "TokenBucket",
    "TokenCounter",
    "estimate_tokens",
    "get_active_token_counter",
    "guidance_key",
    "messages_key",
    "set_active_token_counter",
    "use_token_counter",
    "ChaosCompiler",
    "CompileSession",
    "PipelineStats",
    "StageCache",
    "get_active_stage_cache",
    "no_stage_cache",
    "set_active_stage_cache",
    "use_stage_cache",
    "CircuitBreaker",
    "GracefulShutdown",
    "Journal",
    "JournalRecovery",
    "RunContext",
    "RunState",
    "atomic_write_json",
    "atomic_write_text",
    "config_digest",
    "content_digest",
    "decode_payload",
    "encode_payload",
    "unit_key",
    "ChaosLLMClient",
    "ChaosRepairModel",
    "CompileCache",
    "DEFAULT_CACHE",
    "DEFAULT_MAXSIZE",
    "FaultInjector",
    "FaultSpec",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "GARBAGE_CODE",
    "MUTATORS",
    "ParallelRunner",
    "SEED_CORPUS",
    "RetryPolicy",
    "RetryingCompiler",
    "RetryingLLMClient",
    "RetryingRepairModel",
    "SIM_MUTATORS",
    "StimulusPlan",
    "WorkFailure",
    "get_active_sim_injector",
    "use_sim_chaos",
    "cached_compile",
    "call_with_retry",
    "compile_key",
    "get_active_cache",
    "isolable",
    "no_compile_cache",
    "partition_failures",
    "resolve_jobs",
    "run_fuzz",
    "set_active_cache",
    "use_compile_cache",
]
