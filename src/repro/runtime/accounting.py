"""Per-backend LLM token and cost accounting.

The paper reports its results along a cost axis (gpt-3.5 vs gpt-4);
a production deployment needs the same axis live: how many tokens each
backend consumed, what they cost, and how often the pool throttled,
hedged, failed over or escalated.  This module is the ledger:

* :class:`BackendUsage` -- one backend's counters;
* :class:`TokenCounter` -- thread-safe roll-up across backends, with a
  process-wide *active* instance (the :func:`use_token_counter` /
  :func:`set_active_token_counter` injection point, same shape as the
  compile cache's) so every pool built anywhere in a run reports into
  one ledger that lands in ``report.llm`` and the ``# llm:`` CLI line.

Token counts are a deterministic estimate (``ceil(len/4)``, the usual
chars-per-token rule of thumb) so offline simulated backends produce
stable, comparable numbers; an API-backed adapter that learns exact
usage from the provider response can record those instead.

Like the compile cache's counters, the ledger is per process: process-
pool workers inherit the active counter at fork but record into their
own copies, so under process parallelism the parent's ledger reflects
only parent-side calls.  Serial and thread runs account exactly.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


def estimate_tokens(text: str) -> int:
    """Deterministic token estimate for accounting (~4 chars/token)."""
    if not text:
        return 0
    return (len(text) + 3) // 4


@dataclass
class BackendUsage:
    """Counters for one pool backend."""

    calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    cost_usd: float = 0.0
    #: throttle accounting: how often the limiter imposed a wait, and
    #: the total seconds of imposed wait.
    throttled: int = 0
    wait_seconds: float = 0.0
    #: calls duplicated to the next backend for tail latency.
    hedges: int = 0
    #: hedged calls whose duplicate actually supplied the reply.
    hedge_wins: int = 0
    #: calls answered by this backend after a weaker one failed.
    failovers: int = 0
    #: calls routed here by the tier-escalation policy.
    escalations: int = 0
    #: calls this backend failed (its retry budget exhausted).
    failures: int = 0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "total_tokens": self.total_tokens,
            "cost_usd": round(self.cost_usd, 6),
            "throttled": self.throttled,
            "wait_seconds": round(self.wait_seconds, 4),
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "failovers": self.failovers,
            "escalations": self.escalations,
            "failures": self.failures,
        }


@dataclass
class TokenCounter:
    """Thread-safe per-backend usage ledger for one run."""

    backends: dict = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def usage(self, backend: str) -> BackendUsage:
        with self._lock:
            if backend not in self.backends:
                self.backends[backend] = BackendUsage()
            return self.backends[backend]

    def record_call(
        self,
        backend: str,
        prompt_tokens: int,
        completion_tokens: int,
        cost_usd: float,
        *,
        failover: bool = False,
        escalated: bool = False,
        hedge_win: bool = False,
    ) -> None:
        """Account one completed call against ``backend``."""
        usage = self.usage(backend)
        with self._lock:
            usage.calls += 1
            usage.prompt_tokens += prompt_tokens
            usage.completion_tokens += completion_tokens
            usage.cost_usd += cost_usd
            usage.failovers += int(failover)
            usage.escalations += int(escalated)
            usage.hedge_wins += int(hedge_win)

    def record_throttle(self, backend: str, wait_seconds: float) -> None:
        usage = self.usage(backend)
        with self._lock:
            if wait_seconds > 0.0:
                usage.throttled += 1
                usage.wait_seconds += wait_seconds

    def record_hedge(self, backend: str) -> None:
        usage = self.usage(backend)
        with self._lock:
            usage.hedges += 1

    def record_hedge_win(self, backend: str) -> None:
        """A hedged duplicate's reply was actually consumed (counted
        separately from :meth:`record_call`, which the hedge call makes
        when it completes, before anyone knows whether it won)."""
        usage = self.usage(backend)
        with self._lock:
            usage.hedge_wins += 1

    def record_failure(self, backend: str) -> None:
        usage = self.usage(backend)
        with self._lock:
            usage.failures += 1

    # -- roll-up -----------------------------------------------------------

    @property
    def calls(self) -> int:
        return sum(u.calls for u in self.backends.values())

    @property
    def total_tokens(self) -> int:
        return sum(u.total_tokens for u in self.backends.values())

    @property
    def cost_usd(self) -> float:
        return sum(u.cost_usd for u in self.backends.values())

    def total(self, counter: str) -> int:
        """Sum one named counter (``hedges``, ``escalations``, ...)."""
        return sum(getattr(u, counter) for u in self.backends.values())

    def as_dict(self) -> dict:
        """Report payload: per-backend counters plus run totals."""
        return {
            "backends": {
                name: usage.as_dict()
                for name, usage in sorted(self.backends.items())
            },
            "calls": self.calls,
            "prompt_tokens": sum(u.prompt_tokens for u in self.backends.values()),
            "completion_tokens": sum(
                u.completion_tokens for u in self.backends.values()
            ),
            "total_tokens": self.total_tokens,
            "cost_usd": round(self.cost_usd, 6),
            "escalations": self.total("escalations"),
            "failovers": self.total("failovers"),
            "hedges": self.total("hedges"),
            "hedge_wins": self.total("hedge_wins"),
            "throttled": self.total("throttled"),
            "failures": self.total("failures"),
        }

    def clear(self) -> None:
        with self._lock:
            self.backends.clear()


#: The always-on process default (mirrors the compile cache's
#: DEFAULT_CACHE): pools report here unless a run scopes its own ledger.
DEFAULT_TOKEN_COUNTER = TokenCounter()

_active_counter: TokenCounter = DEFAULT_TOKEN_COUNTER
_active_lock = threading.Lock()


def get_active_token_counter() -> TokenCounter:
    """The ledger LLM pools currently report into."""
    return _active_counter


def set_active_token_counter(counter: TokenCounter) -> TokenCounter:
    """Install ``counter`` as the active ledger; returns the previous."""
    global _active_counter
    with _active_lock:
        previous = _active_counter
        _active_counter = counter
    return previous


@contextmanager
def use_token_counter(counter: TokenCounter) -> Iterator[TokenCounter]:
    """Scope ``counter`` as the active ledger for a ``with`` block."""
    previous = set_active_token_counter(counter)
    try:
        yield counter
    finally:
        set_active_token_counter(previous)
