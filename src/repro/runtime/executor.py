"""Parallel experiment executor.

The paper's protocol multiplies every measurement: Table 1 is 212
dataset entries x 10 repeated trials per cell, Table 2 evaluates n=20
samples for each of 76 problems twice, and every unit of that work is
*independent* -- each trial derives its randomness from an explicit
``(seed, trial)`` key, never from shared mutable state.  That makes the
fan-out embarrassingly parallel and, crucially, *order-free*:
:class:`ParallelRunner` reassembles results by submission index, so a
parallel run is bit-identical to a serial run at the same seed.

Backends:

* ``serial``  -- in-process loop (the default for ``jobs <= 1``);
* ``process`` -- ``ProcessPoolExecutor`` (the default for ``jobs > 1``:
  the work is CPU-bound pure Python, so real speedup needs processes;
  work units must be picklable and are reconstructed from configuration
  in the worker);
* ``thread``  -- ``ThreadPoolExecutor`` (no pickling; useful when the
  work releases the GIL or when sharing the in-process compile cache
  matters more than core scaling).

The worker count comes from ``RTLFixerConfig.jobs`` / the CLI
``--jobs`` flag; ``jobs=0`` means "all CPUs".

Failure handling (``on_error``):

* ``"raise"``  (default) -- the first worker exception aborts the run:
  pending work units are cancelled so the failure surfaces promptly,
  and the exception propagates to the caller;
* ``"collect"`` -- failure isolation: a failing unit becomes a
  :class:`WorkFailure` record in its result slot and the remaining
  units keep running.  One poisoned trial must not sink a 2120-trial
  Table 1 run; callers split the mixed result list with
  :func:`partition_failures`.
"""

from __future__ import annotations

import os
import traceback as _traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Literal, Optional, TypeVar, Union

from ..errors import RunInterrupted

if TYPE_CHECKING:  # typing only
    from .breaker import CircuitBreaker

T = TypeVar("T")
R = TypeVar("R")

Backend = Literal["auto", "serial", "thread", "process"]
OnError = Literal["raise", "collect"]

#: ``progress(done, total, item)`` -- invoked after every completed work
#: unit with the just-finished input item (per-trial liveness for long
#: runs; completion order is nondeterministic under parallel backends,
#: result order is not).
ProgressFn = Callable[[int, int, object], None]

#: ``on_result(index, item, result)`` -- invoked in the *parent* process
#: the moment a work unit's result (or collected :class:`WorkFailure`)
#: is known, with its submission index.  The durable-run journal hangs
#: off this hook: a journaled trial is exactly one whose ``on_result``
#: returned.
ResultFn = Callable[[int, object, object], None]

#: ``should_stop()`` -- polled between dispatches; returning True stops
#: new submissions, drains in-flight units (their results still reach
#: ``on_result``), then raises :class:`~repro.errors.RunInterrupted`.
StopFn = Callable[[], bool]

_REPR_LIMIT = 200


@dataclass(frozen=True)
class WorkFailure:
    """One failed work unit, recorded instead of raised.

    Equality ignores the traceback and item repr (they differ in
    formatting between backends); ``(index, error_type, message)`` is
    the deterministic identity a fixed seed must reproduce.
    """

    #: Submission index of the failed unit (its slot in the result list).
    index: int
    #: Exception class name, e.g. ``"RetryExhaustedError"``.
    error_type: str
    #: ``str(exception)`` of the failure.
    message: str
    #: Truncated ``repr`` of the work unit (diagnostics only).
    item_repr: str = field(default="", compare=False)
    #: Formatted traceback when available (diagnostics only).
    traceback: str = field(default="", compare=False)
    #: True when the unit never ran: the circuit breaker was open and
    #: the trial was failed fast (journaled as SKIPPED, re-executed on
    #: resume).  Participates in equality -- a skip is a different
    #: outcome than a real failure.
    skipped: bool = False

    @classmethod
    def from_exception(cls, index: int, item: object, exc: BaseException) -> "WorkFailure":
        """Build a failure record from a caught worker exception."""
        item_repr = repr(item)
        if len(item_repr) > _REPR_LIMIT:
            item_repr = item_repr[: _REPR_LIMIT - 3] + "..."
        return cls(
            index=index,
            error_type=type(exc).__name__,
            message=str(exc),
            item_repr=item_repr,
            traceback="".join(
                _traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
        )

    @classmethod
    def skipped_unit(cls, index: int, item: object) -> "WorkFailure":
        """A SKIPPED slot for a unit the open circuit breaker denied."""
        item_repr = repr(item)
        if len(item_repr) > _REPR_LIMIT:
            item_repr = item_repr[: _REPR_LIMIT - 3] + "..."
        return cls(
            index=index,
            error_type="CircuitOpenError",
            message="circuit breaker open: trial skipped (fail-fast)",
            item_repr=item_repr,
            skipped=True,
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        verb = "skipped" if self.skipped else "failed"
        return f"unit {self.index} {verb}: {self.error_type}: {self.message}"


def isolable(exc: BaseException) -> bool:
    """Whether ``on_error="collect"`` may swallow ``exc`` as a
    :class:`WorkFailure`.

    Only ordinary :class:`Exception` s are isolable.  Control-flow
    exceptions -- :class:`KeyboardInterrupt`, :class:`SystemExit`,
    :class:`GeneratorExit`, anything else deriving from
    :class:`BaseException` directly -- must always propagate: converting
    a Ctrl-C into a per-unit failure record would turn a user abort into
    a silently-degraded experiment.  (The check is explicit rather than
    relying on ``except Exception`` so the intent survives refactoring
    and multiply-inheriting exception types.)
    """
    return isinstance(exc, Exception) and not isinstance(
        exc, (KeyboardInterrupt, SystemExit, GeneratorExit)
    )


def partition_failures(
    results: list[Union[R, WorkFailure]],
) -> tuple[list[Optional[R]], list[WorkFailure]]:
    """Split a ``map(on_error="collect")`` result list.

    Returns ``(values, failures)`` where ``values`` keeps submission
    order with ``None`` in failed slots, and ``failures`` is ordered by
    submission index.
    """
    values: list[Optional[R]] = []
    failures: list[WorkFailure] = []
    for result in results:
        if isinstance(result, WorkFailure):
            values.append(None)
            failures.append(result)
        else:
            values.append(result)
    return values, failures


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request: ``None`` -> 1 (serial), ``0`` ->
    all CPUs, otherwise the requested worker count."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


class ParallelRunner:
    """Fans independent work units across an executor, deterministically.

    >>> runner = ParallelRunner(jobs=4)
    >>> runner.map(evaluate, units)   # results in submission order
    """

    def __init__(self, jobs: Optional[int] = None, backend: Backend = "auto"):
        self.jobs = resolve_jobs(jobs)
        if backend == "auto":
            backend = "serial" if self.jobs <= 1 else "process"
        if backend not in ("serial", "thread", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        self.backend: Backend = backend

    @property
    def is_serial(self) -> bool:
        """True when work will run inline in the calling process."""
        return self.backend == "serial" or self.jobs <= 1

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        progress: Optional[ProgressFn] = None,
        on_error: OnError = "raise",
        on_result: Optional[ResultFn] = None,
        should_stop: Optional[StopFn] = None,
        breaker: Optional["CircuitBreaker"] = None,
    ) -> list[Union[R, WorkFailure]]:
        """Apply ``fn`` to every item; results keep submission order.

        Work units are scheduled eagerly and collected as they complete
        (so ``progress`` reports real liveness), but the returned list
        is indexed by submission order -- identical to the serial path
        regardless of completion interleaving.  Parallel backends keep a
        bounded dispatch window (``2 x jobs``) in flight rather than
        enqueueing everything up front, so stopping really stops.

        ``on_error="raise"`` propagates the first worker exception after
        cancelling all still-pending units (a failed run aborts promptly
        instead of draining the queue).  ``on_error="collect"`` isolates
        failures: the failing unit's slot holds a :class:`WorkFailure`
        and every other unit still runs.

        ``on_result`` fires in the parent as each unit's outcome is
        known (the durable journal's commit point).  ``should_stop`` is
        polled before every dispatch: once true, no further unit starts,
        in-flight units drain (reaching ``on_result``), then
        :class:`~repro.errors.RunInterrupted` is raised.  ``breaker``
        gates dispatch: a unit denied by an open breaker never runs --
        its slot gets a SKIPPED :class:`WorkFailure` -- and every real
        outcome is reported back via ``record_success`` /
        ``record_failure``.  The breaker requires ``on_error="collect"``
        (fail-fast slots are collected records, not exceptions).
        """
        if on_error not in ("raise", "collect"):
            raise ValueError(f"on_error must be raise|collect, got {on_error!r}")
        if breaker is not None and on_error != "collect":
            raise ValueError(
                'a circuit breaker requires on_error="collect" (skipped '
                "trials are recorded as WorkFailure slots, not raised)"
            )
        items = list(items)
        total = len(items)

        def finish(index: int, done: int, result: Union[R, WorkFailure]) -> None:
            """Publish one completed/skipped unit to the hooks."""
            if on_result is not None:
                on_result(index, items[index], result)
            if progress is not None:
                progress(done, total, items[index])

        if self.is_serial or total <= 1:
            return self._map_serial(
                fn, items, on_error, finish, should_stop, breaker
            )
        return self._map_pool(fn, items, on_error, finish, should_stop, breaker)

    def _map_serial(
        self,
        fn: Callable[[T], R],
        items: list[T],
        on_error: OnError,
        finish: Callable[[int, int, Union[R, WorkFailure]], None],
        should_stop: Optional[StopFn],
        breaker: Optional["CircuitBreaker"],
    ) -> list[Union[R, WorkFailure]]:
        """In-process map with dispatch gating (the reference semantics)."""
        results: list[Union[R, WorkFailure]] = []
        for index, item in enumerate(items):
            if should_stop is not None and should_stop():
                raise RunInterrupted(
                    f"shutdown requested after {index}/{len(items)} unit(s)",
                    done=index, total=len(items),
                )
            if breaker is not None and not breaker.allow():
                skipped = WorkFailure.skipped_unit(index, item)
                results.append(skipped)
                finish(index, index + 1, skipped)
                continue
            # Sample probe-ness at dispatch: allow() just transitioned to
            # half-open iff this unit is the probe.
            probe = breaker is not None and breaker.probing
            try:
                result: Union[R, WorkFailure] = fn(item)
            except BaseException as exc:
                if breaker is not None:
                    breaker.record_failure(exc, probe=probe)
                if on_error == "raise" or not isolable(exc):
                    raise
                result = WorkFailure.from_exception(index, item, exc)
            else:
                if breaker is not None:
                    breaker.record_success(probe=probe)
            results.append(result)
            finish(index, index + 1, result)
        return results

    def _map_pool(
        self,
        fn: Callable[[T], R],
        items: list[T],
        on_error: OnError,
        finish: Callable[[int, int, Union[R, WorkFailure]], None],
        should_stop: Optional[StopFn],
        breaker: Optional["CircuitBreaker"],
    ) -> list[Union[R, WorkFailure]]:
        """Pool-backed map: bounded dispatch window, drain-on-stop."""
        total = len(items)
        executor_cls = (
            ProcessPoolExecutor if self.backend == "process" else ThreadPoolExecutor
        )
        slots: list[Union[R, WorkFailure, None]] = [None] * total
        workers = min(self.jobs, total)
        window = workers * 2
        pending: dict[Future, int] = {}
        #: Submission indices of dispatched half-open probes: only the
        #: probe's own outcome may settle the breaker out of half-open.
        probe_indices: set[int] = set()
        next_index = 0
        done = 0
        stopping = False

        with executor_cls(max_workers=workers) as pool:

            def submit_more() -> None:
                """Keep the dispatch window full, honouring the gates."""
                nonlocal next_index, done, stopping
                while next_index < total and len(pending) < window:
                    if stopping or (should_stop is not None and should_stop()):
                        stopping = True
                        return
                    if breaker is not None and breaker.probing:
                        # A probe is in flight: hold further dispatch (and
                        # further skipping) until its outcome settles the
                        # breaker one way or the other.
                        return
                    index = next_index
                    next_index += 1
                    if breaker is not None and not breaker.allow():
                        skipped = WorkFailure.skipped_unit(index, items[index])
                        slots[index] = skipped
                        done += 1
                        finish(index, done, skipped)
                        continue
                    if breaker is not None and breaker.probing:
                        # allow() just converted this unit into the probe.
                        probe_indices.add(index)
                    pending[pool.submit(fn, items[index])] = index

            submit_more()
            try:
                while pending:
                    completed, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in completed:
                        index = pending.pop(future)
                        is_probe = index in probe_indices
                        probe_indices.discard(index)
                        if future.cancelled():
                            continue  # un-run unit dropped during a stop
                        try:
                            result: Union[R, WorkFailure] = future.result()
                        except BaseException as exc:
                            if breaker is not None:
                                breaker.record_failure(exc, probe=is_probe)
                            if on_error == "raise" or not isolable(exc):
                                raise
                            result = WorkFailure.from_exception(
                                index, items[index], exc
                            )
                        else:
                            if breaker is not None:
                                breaker.record_success(probe=is_probe)
                        slots[index] = result
                        done += 1
                        finish(index, done, result)
                    submit_more()
                    if stopping:
                        # Drop what never started; in-flight units drain
                        # through the loop above and reach on_result.
                        for future in list(pending):
                            if future.cancel():
                                pending.pop(future)
            except BaseException:
                # Abort promptly: drop every not-yet-started unit so the
                # pool shutdown only waits on the (few) in-flight ones,
                # then let the failure propagate (cancel_futures
                # semantics -- see the PR 2 executor bugfix).
                for future in pending:
                    future.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        if stopping:
            raise RunInterrupted(
                f"shutdown requested after {done}/{total} unit(s)",
                done=done, total=total,
            )
        if done != total:
            # Defense in depth: a normally-completed loop must have
            # filled every slot.  Starvation here (e.g. a breaker wedged
            # half-open with nothing in flight) would otherwise surface
            # as silent None results that corrupt downstream reports.
            raise RuntimeError(
                f"executor invariant violated: {done}/{total} result "
                "slots filled after dispatch loop exit"
            )
        return slots  # type: ignore[return-value]
