"""Parallel experiment executor.

The paper's protocol multiplies every measurement: Table 1 is 212
dataset entries x 10 repeated trials per cell, Table 2 evaluates n=20
samples for each of 76 problems twice, and every unit of that work is
*independent* -- each trial derives its randomness from an explicit
``(seed, trial)`` key, never from shared mutable state.  That makes the
fan-out embarrassingly parallel and, crucially, *order-free*:
:class:`ParallelRunner` reassembles results by submission index, so a
parallel run is bit-identical to a serial run at the same seed.

Backends:

* ``serial``  -- in-process loop (the default for ``jobs <= 1``);
* ``process`` -- ``ProcessPoolExecutor`` (the default for ``jobs > 1``:
  the work is CPU-bound pure Python, so real speedup needs processes;
  work units must be picklable and are reconstructed from configuration
  in the worker);
* ``thread``  -- ``ThreadPoolExecutor`` (no pickling; useful when the
  work releases the GIL or when sharing the in-process compile cache
  matters more than core scaling).

The worker count comes from ``RTLFixerConfig.jobs`` / the CLI
``--jobs`` flag; ``jobs=0`` means "all CPUs".
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from typing import Callable, Iterable, Literal, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")

Backend = Literal["auto", "serial", "thread", "process"]

#: ``progress(done, total, item)`` -- invoked after every completed work
#: unit with the just-finished input item (per-trial liveness for long
#: runs; completion order is nondeterministic under parallel backends,
#: result order is not).
ProgressFn = Callable[[int, int, object], None]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request: ``None`` -> 1 (serial), ``0`` ->
    all CPUs, otherwise the requested worker count."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


class ParallelRunner:
    """Fans independent work units across an executor, deterministically.

    >>> runner = ParallelRunner(jobs=4)
    >>> runner.map(evaluate, units)   # results in submission order
    """

    def __init__(self, jobs: Optional[int] = None, backend: Backend = "auto"):
        self.jobs = resolve_jobs(jobs)
        if backend == "auto":
            backend = "serial" if self.jobs <= 1 else "process"
        if backend not in ("serial", "thread", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        self.backend: Backend = backend

    @property
    def is_serial(self) -> bool:
        """True when work will run inline in the calling process."""
        return self.backend == "serial" or self.jobs <= 1

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        progress: Optional[ProgressFn] = None,
    ) -> list[R]:
        """Apply ``fn`` to every item; results keep submission order.

        Work units are scheduled eagerly and collected as they complete
        (so ``progress`` reports real liveness), but the returned list
        is indexed by submission order -- identical to the serial path
        regardless of completion interleaving.  The first worker
        exception propagates to the caller.
        """
        items = list(items)
        total = len(items)
        if self.is_serial or total <= 1:
            results: list[R] = []
            for index, item in enumerate(items):
                results.append(fn(item))
                if progress is not None:
                    progress(index + 1, total, item)
            return results

        executor_cls = (
            ProcessPoolExecutor if self.backend == "process" else ThreadPoolExecutor
        )
        slots: list[Optional[R]] = [None] * total
        workers = min(self.jobs, total)
        with executor_cls(max_workers=workers) as pool:
            futures = {pool.submit(fn, item): i for i, item in enumerate(items)}
            done = 0
            for future in as_completed(futures):
                index = futures[future]
                slots[index] = future.result()
                done += 1
                if progress is not None:
                    progress(done, total, items[index])
        return slots  # type: ignore[return-value]
