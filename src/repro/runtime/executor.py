"""Parallel experiment executor.

The paper's protocol multiplies every measurement: Table 1 is 212
dataset entries x 10 repeated trials per cell, Table 2 evaluates n=20
samples for each of 76 problems twice, and every unit of that work is
*independent* -- each trial derives its randomness from an explicit
``(seed, trial)`` key, never from shared mutable state.  That makes the
fan-out embarrassingly parallel and, crucially, *order-free*:
:class:`ParallelRunner` reassembles results by submission index, so a
parallel run is bit-identical to a serial run at the same seed.

Backends:

* ``serial``  -- in-process loop (the default for ``jobs <= 1``);
* ``process`` -- ``ProcessPoolExecutor`` (the default for ``jobs > 1``:
  the work is CPU-bound pure Python, so real speedup needs processes;
  work units must be picklable and are reconstructed from configuration
  in the worker);
* ``thread``  -- ``ThreadPoolExecutor`` (no pickling; useful when the
  work releases the GIL or when sharing the in-process compile cache
  matters more than core scaling).

The worker count comes from ``RTLFixerConfig.jobs`` / the CLI
``--jobs`` flag; ``jobs=0`` means "all CPUs".

Failure handling (``on_error``):

* ``"raise"``  (default) -- the first worker exception aborts the run:
  pending work units are cancelled so the failure surfaces promptly,
  and the exception propagates to the caller;
* ``"collect"`` -- failure isolation: a failing unit becomes a
  :class:`WorkFailure` record in its result slot and the remaining
  units keep running.  One poisoned trial must not sink a 2120-trial
  Table 1 run; callers split the mixed result list with
  :func:`partition_failures`.
"""

from __future__ import annotations

import os
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Iterable, Literal, Optional, TypeVar, Union

T = TypeVar("T")
R = TypeVar("R")

Backend = Literal["auto", "serial", "thread", "process"]
OnError = Literal["raise", "collect"]

#: ``progress(done, total, item)`` -- invoked after every completed work
#: unit with the just-finished input item (per-trial liveness for long
#: runs; completion order is nondeterministic under parallel backends,
#: result order is not).
ProgressFn = Callable[[int, int, object], None]

_REPR_LIMIT = 200


@dataclass(frozen=True)
class WorkFailure:
    """One failed work unit, recorded instead of raised.

    Equality ignores the traceback and item repr (they differ in
    formatting between backends); ``(index, error_type, message)`` is
    the deterministic identity a fixed seed must reproduce.
    """

    #: Submission index of the failed unit (its slot in the result list).
    index: int
    #: Exception class name, e.g. ``"RetryExhaustedError"``.
    error_type: str
    #: ``str(exception)`` of the failure.
    message: str
    #: Truncated ``repr`` of the work unit (diagnostics only).
    item_repr: str = field(default="", compare=False)
    #: Formatted traceback when available (diagnostics only).
    traceback: str = field(default="", compare=False)

    @classmethod
    def from_exception(cls, index: int, item: object, exc: BaseException) -> "WorkFailure":
        """Build a failure record from a caught worker exception."""
        item_repr = repr(item)
        if len(item_repr) > _REPR_LIMIT:
            item_repr = item_repr[: _REPR_LIMIT - 3] + "..."
        return cls(
            index=index,
            error_type=type(exc).__name__,
            message=str(exc),
            item_repr=item_repr,
            traceback="".join(
                _traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return f"unit {self.index}: {self.error_type}: {self.message}"


def isolable(exc: BaseException) -> bool:
    """Whether ``on_error="collect"`` may swallow ``exc`` as a
    :class:`WorkFailure`.

    Only ordinary :class:`Exception` s are isolable.  Control-flow
    exceptions -- :class:`KeyboardInterrupt`, :class:`SystemExit`,
    :class:`GeneratorExit`, anything else deriving from
    :class:`BaseException` directly -- must always propagate: converting
    a Ctrl-C into a per-unit failure record would turn a user abort into
    a silently-degraded experiment.  (The check is explicit rather than
    relying on ``except Exception`` so the intent survives refactoring
    and multiply-inheriting exception types.)
    """
    return isinstance(exc, Exception) and not isinstance(
        exc, (KeyboardInterrupt, SystemExit, GeneratorExit)
    )


def partition_failures(
    results: list[Union[R, WorkFailure]],
) -> tuple[list[Optional[R]], list[WorkFailure]]:
    """Split a ``map(on_error="collect")`` result list.

    Returns ``(values, failures)`` where ``values`` keeps submission
    order with ``None`` in failed slots, and ``failures`` is ordered by
    submission index.
    """
    values: list[Optional[R]] = []
    failures: list[WorkFailure] = []
    for result in results:
        if isinstance(result, WorkFailure):
            values.append(None)
            failures.append(result)
        else:
            values.append(result)
    return values, failures


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request: ``None`` -> 1 (serial), ``0`` ->
    all CPUs, otherwise the requested worker count."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


class ParallelRunner:
    """Fans independent work units across an executor, deterministically.

    >>> runner = ParallelRunner(jobs=4)
    >>> runner.map(evaluate, units)   # results in submission order
    """

    def __init__(self, jobs: Optional[int] = None, backend: Backend = "auto"):
        self.jobs = resolve_jobs(jobs)
        if backend == "auto":
            backend = "serial" if self.jobs <= 1 else "process"
        if backend not in ("serial", "thread", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        self.backend: Backend = backend

    @property
    def is_serial(self) -> bool:
        """True when work will run inline in the calling process."""
        return self.backend == "serial" or self.jobs <= 1

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        progress: Optional[ProgressFn] = None,
        on_error: OnError = "raise",
    ) -> list[Union[R, WorkFailure]]:
        """Apply ``fn`` to every item; results keep submission order.

        Work units are scheduled eagerly and collected as they complete
        (so ``progress`` reports real liveness), but the returned list
        is indexed by submission order -- identical to the serial path
        regardless of completion interleaving.

        ``on_error="raise"`` propagates the first worker exception after
        cancelling all still-pending units (a failed run aborts promptly
        instead of draining the queue).  ``on_error="collect"`` isolates
        failures: the failing unit's slot holds a :class:`WorkFailure`
        and every other unit still runs.
        """
        if on_error not in ("raise", "collect"):
            raise ValueError(f"on_error must be raise|collect, got {on_error!r}")
        items = list(items)
        total = len(items)
        if self.is_serial or total <= 1:
            results: list[Union[R, WorkFailure]] = []
            for index, item in enumerate(items):
                try:
                    results.append(fn(item))
                except BaseException as exc:
                    if on_error == "raise" or not isolable(exc):
                        raise
                    results.append(WorkFailure.from_exception(index, item, exc))
                if progress is not None:
                    progress(index + 1, total, item)
            return results

        executor_cls = (
            ProcessPoolExecutor if self.backend == "process" else ThreadPoolExecutor
        )
        slots: list[Union[R, WorkFailure, None]] = [None] * total
        workers = min(self.jobs, total)
        with executor_cls(max_workers=workers) as pool:
            futures = {pool.submit(fn, item): i for i, item in enumerate(items)}
            done = 0
            try:
                for future in as_completed(futures):
                    index = futures[future]
                    try:
                        slots[index] = future.result()
                    except BaseException as exc:
                        if on_error == "raise" or not isolable(exc):
                            raise
                        slots[index] = WorkFailure.from_exception(
                            index, items[index], exc
                        )
                    done += 1
                    if progress is not None:
                        progress(done, total, items[index])
            except BaseException:
                # Abort promptly: drop every not-yet-started unit so the
                # pool shutdown only waits on the (few) in-flight ones,
                # then let the failure propagate (cancel_futures
                # semantics -- see satellite bugfix).
                for pending in futures:
                    pending.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        return slots  # type: ignore[return-value]
