"""The human-expert-guidance retrieval database (paper §3.3).

Each :class:`GuidanceEntry` pairs a compiler-log pattern with a human
explanation and a demonstration of the fix, categorized by the error
taxonomy.  Entries are keyed the way the paper keys them: by compiler
error tags ("we opted for an exact match to error tags for simplicity"),
with fuzzy / Jaccard / vector-ish retrievers also provided for the
ablation.

The database is a persistent, non-parametric external memory: it can be
serialized to JSON and reloaded, and new entries can be added as new
struggle cases are curated.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..diagnostics import ErrorCategory
from ..errors import RetrievalError


@dataclass(frozen=True)
class GuidanceEntry:
    """One curated entry: compiler log sample + human expert guidance."""

    category: ErrorCategory
    compiler: str  # "iverilog" | "quartus"
    #: A representative compiler log line for this error.
    log_pattern: str
    #: The human expert's explanation / instruction.
    guidance: str
    #: A short demonstration of the repair (before -> after style).
    demonstration: str = ""

    def to_dict(self) -> dict:
        data = asdict(self)
        data["category"] = self.category.value
        return data

    @staticmethod
    def from_dict(data: dict) -> "GuidanceEntry":
        return GuidanceEntry(
            category=ErrorCategory(data["category"]),
            compiler=data["compiler"],
            log_pattern=data["log_pattern"],
            guidance=data["guidance"],
            demonstration=data.get("demonstration", ""),
        )


@dataclass
class GuidanceDatabase:
    """The retrieval store; entries are grouped per compiler flavour."""

    entries: list[GuidanceEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def add(self, entry: GuidanceEntry) -> None:
        self.entries.append(entry)

    def for_compiler(self, compiler: str) -> list[GuidanceEntry]:
        if compiler not in ("iverilog", "quartus"):
            raise RetrievalError(f"unknown compiler flavour {compiler!r}")
        return [e for e in self.entries if e.compiler == compiler]

    def categories(self, compiler: str) -> list[ErrorCategory]:
        seen: list[ErrorCategory] = []
        for entry in self.for_compiler(compiler):
            if entry.category not in seen:
                seen.append(entry.category)
        return seen

    # -- persistence -----------------------------------------------------

    def to_json(self) -> str:
        return json.dumps([e.to_dict() for e in self.entries], indent=2)

    @staticmethod
    def from_json(text: str) -> "GuidanceDatabase":
        return GuidanceDatabase(
            entries=[GuidanceEntry.from_dict(d) for d in json.loads(text)]
        )

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())

    @staticmethod
    def load(path: str) -> "GuidanceDatabase":
        with open(path) as f:
            return GuidanceDatabase.from_json(f.read())
