"""The curated human-expert guidance entries.

Mirrors the paper's database scale: 7 common error categories with 30
entries for iverilog and 11 common error categories with 45 entries for
Quartus.  The wording follows the style of the paper's Fig. 3 examples
("Check if 'clk' is an input...", "Carefully examine the index
values...").
"""

from __future__ import annotations

from ..diagnostics import ErrorCategory
from .database import GuidanceDatabase, GuidanceEntry

_E = ErrorCategory

# (category, log_pattern, guidance, demonstration)
_IVERILOG_ENTRIES: list[tuple[ErrorCategory, str, str, str]] = [
    # UNDECLARED_ID (5)
    (_E.UNDECLARED_ID,
     "Unable to bind wire/reg/memory `clk' in `top_module'",
     "Check if 'clk' is an input. If not, and if 'clk' is used within the "
     "module, make sure the name is correct. If it's meant to trigger an "
     "'always' block, replace 'posedge clk' with '*'.",
     "module top_module(input clk, ...);  // add clk to the port list"),
    (_E.UNDECLARED_ID,
     "Unable to bind wire/reg/memory `q_next' in `top_module'",
     "The signal is used but never declared. Declare it as a wire or reg "
     "before the first use, or fix the spelling to match an existing signal.",
     "reg q_next;  // declare before use"),
    (_E.UNDECLARED_ID,
     "Unable to bind wire/reg/memory `temp' in `top_module'",
     "Compare the undeclared name against nearby declarations; LLMs often "
     "drift a suffix (tmp vs temp). Rename the use to the declared signal.",
     "assign out = tmp;  // was 'temp'"),
    (_E.UNDECLARED_ID,
     "error: Unknown module type: submodule",
     "The instantiated module does not exist in this file. Either define "
     "the module or correct the instance's module name.",
     "my_adder u1 (.a(a), .b(b));  // module my_adder must be defined"),
    (_E.UNDECLARED_ID,
     "Failed to evaluate event expression.",
     "An identifier inside @(...) is not declared. Clocks and resets must "
     "appear in the port list before being used in a sensitivity list.",
     "input clk,  // then: always @(posedge clk)"),
    # INDEX_RANGE (5)
    (_E.INDEX_RANGE,
     "Index out[8] is out of range.",
     "Carefully examine the index values to prevent encountering 'index "
     "out of bound' errors in your code. The legal indices of a vector "
     "declared [7:0] are 0 through 7.",
     "assign y = out[7];  // not out[8]"),
    (_E.INDEX_RANGE,
     "Index in[-1] is out of range.",
     "A computed index went negative. Re-derive the arithmetic at the loop "
     "boundaries (the first and last iterations) and clamp or shift it.",
     "q[(i+1)*4 + j]  // avoid (i-1) when i starts at 0"),
    (_E.INDEX_RANGE,
     "Index q[16] is out of range.",
     "When utilizing parameters for indexing, verify the parameter value "
     "against the declared range; an N-entry structure has indices 0..N-1.",
     "for (i = 0; i < 16; i = i + 1)  // use <, not <="),
    (_E.INDEX_RANGE,
     "part select out[9:2] is out of range",
     "A part-select must lie entirely inside the declared range. Shrink "
     "the select or widen the declaration.",
     "assign y = a[7:0];"),
    (_E.INDEX_RANGE,
     "Index mem[256] is out of range.",
     "Memory word indices run from the declared low bound to the high "
     "bound. Check the address width feeding this memory.",
     "reg [7:0] mem [0:255];  // mem[255] is the last word"),
    # INVALID_LVALUE (5)
    (_E.INVALID_LVALUE,
     "out is not a valid l-value in top_module.",
     "Use assign statements instead of always block if possible. If the "
     "signal must be written inside an always block, declare it as reg.",
     "output reg out,  // or: assign out = expr;"),
    (_E.INVALID_LVALUE,
     "q is not a valid l-value in top_module.",
     "A wire cannot be assigned procedurally. Change the declaration from "
     "wire to reg, or move the assignment out of the always block.",
     "reg [3:0] q;"),
    (_E.INVALID_LVALUE,
     "a is not a valid l-value in top_module.",
     "Input ports can never be assigned inside the module. Drive a new "
     "internal signal instead and leave the input untouched.",
     "wire a_gated = a & en;"),
    (_E.INVALID_LVALUE,
     "count is not a valid l-value in top_module.",
     "When an output is written with <= inside always @(posedge clk), its "
     "declaration needs the reg keyword: 'output reg [7:0] count'.",
     "output reg [7:0] count"),
    (_E.INVALID_LVALUE,
     "y is not a valid l-value in top_module.",
     "Pick one driving style per signal: continuous 'assign' for wires, "
     "procedural blocks for regs. Mixing them on one signal is an error.",
     "assign y = sel ? a : b;"),
    # SYNTAX_NEAR (5)
    (_E.SYNTAX_NEAR,
     "main.v:5: syntax error",
     "Read the reported line and the line before it. The most common "
     "causes are a missing semicolon, a misspelled keyword (asign, "
     "modul), or an operator that Verilog does not have.",
     "assign y = a;  // keyword is 'assign'"),
    (_E.SYNTAX_NEAR,
     "main.v:12: syntax error",
     "Check that every statement inside an always block ends with ';' and "
     "that parentheses and begin/end pairs are balanced above this line.",
     "if (en) begin q <= d; end"),
    (_E.SYNTAX_NEAR,
     "syntax error near '='",
     "A doubled operator such as '==' on the left of an assignment, or a "
     "missing l-value, commonly triggers this. Rewrite the assignment.",
     "assign y = a;  // not: assign y == a"),
    (_E.SYNTAX_NEAR,
     "syntax error near 'endmodule'",
     "The parser reached endmodule while a statement was incomplete. "
     "Inspect the last statement in the module for a missing ';' or end.",
     "q <= d;  // terminate the final statement"),
    (_E.SYNTAX_NEAR,
     "I give up.",
     "iverilog aborts like this on badly malformed input. Re-emit the "
     "whole module cleanly: module header, declarations, logic, endmodule.",
     "module top_module(...); ... endmodule"),
    # BAD_LITERAL (3)
    (_E.BAD_LITERAL,
     "Malformed number: 4'b0012",
     "Binary literals may only contain 0, 1, x and z. Rewrite the constant "
     "with digits legal for its base, or switch the base prefix.",
     "4'b0010  // or 4'd2"),
    (_E.BAD_LITERAL,
     "Malformed number: 8'hGG",
     "Hex literals allow 0-9 and a-f. Replace the invalid digits; if you "
     "meant a placeholder, use x (unknown) instead.",
     "8'hAB"),
    (_E.BAD_LITERAL,
     "Malformed number: 4'd1a",
     "Decimal-based literals cannot contain letters. Either remove the "
     "letter or change the base to 'h.",
     "4'd10  // or 8'h1a"),
    # PORT_MISMATCH (4)
    (_E.PORT_MISMATCH,
     "port ``cin_p'' is not a port of adder8.",
     "A named connection .name(...) must match a port declared by the "
     "submodule. Open the submodule header and copy the exact port names.",
     ".cin(carry)  // adder8 declares 'cin'"),
    (_E.PORT_MISMATCH,
     "port ``data'' is not a port of fifo4.",
     "Port names are case sensitive and must match exactly; 'data' vs "
     "'din' is a typical slip. Use the declared name.",
     ".din(data_in)"),
    (_E.PORT_MISMATCH,
     "port ``q'' is not a port of bin2gray4.",
     "List the submodule's ports before wiring: the output may be called "
     "'gray' rather than 'q'.",
     ".gray(gray_out)"),
    (_E.PORT_MISMATCH,
     "too many positional port connections",
     "Positional connections must not exceed the number of declared "
     "ports. Prefer named connections to avoid ordering mistakes.",
     "sub u1 (.a(x), .b(y), .out(z));"),
    # DUPLICATE_DECL (3)
    (_E.DUPLICATE_DECL,
     "`q' has already been declared in this scope.",
     "Delete the second declaration. Note that 'output reg q' already "
     "declares q: a separate 'reg q;' line afterwards is a duplicate.",
     "output reg q,  // no extra 'reg q;' needed"),
    (_E.DUPLICATE_DECL,
     "`temp' has already been declared in this scope.",
     "Two declarations of the same name in one module are illegal. Remove "
     "one or rename the second signal if both are genuinely needed.",
     "wire temp2;"),
    (_E.DUPLICATE_DECL,
     "`i' has already been declared in this scope.",
     "The loop variable is declared twice (e.g. 'integer i;' appearing in "
     "both the module and the block). Keep only one declaration.",
     "integer i;  // once"),
]

_QUARTUS_EXTRA: list[tuple[ErrorCategory, str, str, str]] = [
    # MISSING_SEMICOLON (4)
    (_E.MISSING_SEMICOLON,
     'Error (10201): missing ";" before \'endmodule\'',
     "Insert a semicolon at the end of the statement preceding the "
     "reported token. Every assign, declaration and procedural statement "
     "ends with ';'.",
     "assign out = in;"),
    (_E.MISSING_SEMICOLON,
     'Error (10201): missing ";" before \'assign\'',
     "The previous line is missing its terminator. Add ';' to it rather "
     "than editing the reported line.",
     "wire [7:0] t;\nassign t = a;"),
    (_E.MISSING_SEMICOLON,
     'Error (10201): missing ";" before \'end\'',
     "Nonblocking assignments inside always blocks also need semicolons: "
     "'q <= d;'.",
     "q <= d;"),
    (_E.MISSING_SEMICOLON,
     'Error (10201): missing ";" before \'else\'',
     "The statement in the if-branch must be terminated before 'else'.",
     "if (reset) q <= 0;\nelse q <= q + 1;"),
    # UNBALANCED_BLOCK (4)
    (_E.UNBALANCED_BLOCK,
     'Error (10759): expecting "end" near \'endmodule\'',
     "A begin block was never closed. Count begin/end pairs inside each "
     "always block and add the missing 'end'.",
     "always @(*) begin ... end"),
    (_E.UNBALANCED_BLOCK,
     'Error (10759): expecting "endcase" near \'endmodule\'',
     "Every case statement must be closed with 'endcase' before the "
     "enclosing block ends.",
     "case (s) ... endcase"),
    (_E.UNBALANCED_BLOCK,
     'Error (10759): expecting "endmodule" near \'module\'',
     "The previous module was not closed. Add 'endmodule' before starting "
     "a new module declaration.",
     "endmodule\nmodule next_one(...);"),
    (_E.UNBALANCED_BLOCK,
     'Error (10759): expecting "end" near \'always\'',
     "An always block started before the previous one's begin/end was "
     "balanced. Close the earlier block first.",
     "end\nalways @(posedge clk) ..."),
    # C_STYLE_SYNTAX (4)
    (_E.C_STYLE_SYNTAX,
     'Error (10173): operator "++" is not supported in Verilog HDL',
     "Verilog has no increment operator. Use an explicit assignment such "
     "as i = i + 1 instead.",
     "for (i = 0; i < 8; i = i + 1)"),
    (_E.C_STYLE_SYNTAX,
     'Error (10173): operator "+=" is not supported in Verilog HDL',
     "Compound assignments come from C. Expand them: 'x += y' becomes "
     "'x = x + y'.",
     "count = count + in[i];"),
    (_E.C_STYLE_SYNTAX,
     'Error (10173): operator "--" is not supported in Verilog HDL',
     "Replace the decrement with 'i = i - 1'. This is accepted in "
     "SystemVerilog but not in plain Verilog HDL.",
     "for (i = 7; i >= 0; i = i - 1)"),
    (_E.C_STYLE_SYNTAX,
     'Error (10173): operator "*=" is not supported in Verilog HDL',
     "Expand compound arithmetic updates into full assignments.",
     "p = p * 2;"),
    # EVENT_EXPR (3)
    (_E.EVENT_EXPR,
     "Error (10216): invalid event control expression: empty event control",
     "The sensitivity list is empty. Use @(*) for combinational logic or "
     "@(posedge clk) for sequential logic.",
     "always @(*) ..."),
    (_E.EVENT_EXPR,
     "Error (10216): invalid event control expression: missing expression "
     "after 'posedge'",
     "posedge/negedge must be followed by a signal name, typically the "
     "clock.",
     "always @(posedge clk)"),
    (_E.EVENT_EXPR,
     "Error (10216): invalid event control expression: missing event control",
     "A bare 'always' loops forever in simulation. Add an event control: "
     "@(*) for combinational or an edge expression for clocked logic.",
     "always @(posedge clk) begin ... end"),
]


#: Representative message arguments used to render each category's
#: sample Quartus log line for the database.
_QUARTUS_EXAMPLE_ARGS: dict[ErrorCategory, dict] = {
    _E.UNDECLARED_ID: {"name": "clk"},
    _E.INDEX_RANGE: {"index": 8, "range": "[7:0]", "name": "out"},
    _E.INVALID_LVALUE: {"name": "out", "reason": "wire in procedural block"},
    _E.SYNTAX_NEAR: {"near": "'endmodule'"},
    _E.BAD_LITERAL: {"literal": "4'b0012"},
    _E.PORT_MISMATCH: {"port": "cin", "module": "adder8"},
    _E.DUPLICATE_DECL: {"name": "q", "what": "net"},
}


def _requartus(entry: tuple[ErrorCategory, str, str, str]) -> tuple[ErrorCategory, str, str, str]:
    """Render a category's sample log line in genuine Quartus phrasing so
    text-similarity retrievers see representative wording."""
    from ..diagnostics.quartus_style import _TEMPLATES
    from ..diagnostics import quartus_tag

    category, _, guidance, demo = entry
    args = _QUARTUS_EXAMPLE_ARGS.get(category, {})
    message = _TEMPLATES[category].format_map(
        {**{k: "?" for k in ("name", "index", "range", "reason", "near",
                             "literal", "port", "module", "what", "before",
                             "expected", "op")}, **args}
    )
    log = f"Error ({quartus_tag(category)}): Verilog HDL error at main.v(5): {message}"
    return (category, log, guidance, demo)


def build_default_database() -> GuidanceDatabase:
    """The curated database: 30 iverilog entries over 7 categories plus
    45 Quartus entries over 11 categories, matching the paper's scale."""
    db = GuidanceDatabase()
    for category, log, guidance, demo in _IVERILOG_ENTRIES:
        db.add(GuidanceEntry(
            category=category, compiler="iverilog",
            log_pattern=log, guidance=guidance, demonstration=demo,
        ))
    for entry in [_requartus(e) for e in _IVERILOG_ENTRIES] + _QUARTUS_EXTRA:
        category, log, guidance, demo = entry
        db.add(GuidanceEntry(
            category=category, compiler="quartus",
            log_pattern=log, guidance=guidance, demonstration=demo,
        ))
    return db
