"""Retrieval-Augmented Generation: the human-guidance database and the
retrievers that query it (paper §3.3)."""

from .database import GuidanceDatabase, GuidanceEntry
from .guidance_data import build_default_database
from .retrievers import (
    RETRIEVER_KINDS,
    ExactTagRetriever,
    FuzzyRetriever,
    JaccardRetriever,
    Retrieved,
    Retriever,
    TfIdfRetriever,
    make_retriever,
)

__all__ = [
    "ExactTagRetriever",
    "FuzzyRetriever",
    "GuidanceDatabase",
    "GuidanceEntry",
    "JaccardRetriever",
    "RETRIEVER_KINDS",
    "Retrieved",
    "Retriever",
    "TfIdfRetriever",
    "build_default_database",
    "make_retriever",
]
