"""Retrievers over the guidance database.

The paper: "common retrievers such as pattern-matching, fuzzy search, or
similarity search with a vector database are suitable. In our
experiments, we opted for an exact match to error tags for simplicity."

All four options are implemented; the exact-tag retriever is the default
used by the experiments, the rest feed the retriever ablation bench.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from dataclasses import dataclass
from typing import Protocol

from ..diagnostics import QUARTUS_TAG_TO_CATEGORY, ErrorCategory
from ..errors import RetrievalError
from .database import GuidanceDatabase, GuidanceEntry


@dataclass(frozen=True)
class Retrieved:
    entry: GuidanceEntry
    score: float


class Retriever(Protocol):
    """Given a compiler log, return relevant guidance entries."""

    def retrieve(self, log: str, k: int = 3) -> list[Retrieved]: ...


#: Words common to nearly every compiler message; they carry no signal
#: for similarity scoring.
_STOPWORDS = frozenset(
    """error verilog hdl at the is not in file line main v sv a an of to
    and or for was 5 error(s) tmp work check that every with""".split()
)


def _words(text: str) -> list[str]:
    return [
        w for w in re.findall(r"[a-z0-9']+", text.lower()) if w not in _STOPWORDS
    ]


class ExactTagRetriever:
    """Match on compiler error tags (the paper's choice).

    For Quartus logs the numeric tag ``Error (NNNNN)`` identifies the
    category exactly; for iverilog logs, category-specific message
    fragments serve as the tags.
    """

    _IVERILOG_TAGS: dict[str, ErrorCategory] = {
        "unable to bind": ErrorCategory.UNDECLARED_ID,
        "unknown module type": ErrorCategory.UNDECLARED_ID,
        "is out of range": ErrorCategory.INDEX_RANGE,
        "not a valid l-value": ErrorCategory.INVALID_LVALUE,
        "malformed number": ErrorCategory.BAD_LITERAL,
        "is not a port of": ErrorCategory.PORT_MISMATCH,
        "already been declared": ErrorCategory.DUPLICATE_DECL,
        "syntax error": ErrorCategory.SYNTAX_NEAR,
        "i give up": ErrorCategory.SYNTAX_NEAR,
    }

    def __init__(self, database: GuidanceDatabase, compiler: str):
        self.compiler = compiler
        self.entries = database.for_compiler(compiler)
        if not self.entries:
            raise RetrievalError(f"database holds no {compiler!r} entries")

    def categories_in_log(self, log: str) -> list[ErrorCategory]:
        found: list[ErrorCategory] = []
        if self.compiler == "quartus":
            for tag_text in re.findall(r"Error \((\d+)\)", log):
                category = QUARTUS_TAG_TO_CATEGORY.get(int(tag_text))
                if category is not None and category not in found:
                    found.append(category)
        else:
            lowered = log.lower()
            for fragment, category in self._IVERILOG_TAGS.items():
                if fragment in lowered and category not in found:
                    found.append(category)
        return found

    def retrieve(self, log: str, k: int = 3) -> list[Retrieved]:
        out: list[Retrieved] = []
        for category in self.categories_in_log(log):
            for entry in self.entries:
                if entry.category is category:
                    out.append(Retrieved(entry=entry, score=1.0))
        return out[:k]


class FuzzyRetriever:
    """Score entries by the fraction of log words appearing in the
    entry's pattern (simple token recall)."""

    def __init__(self, database: GuidanceDatabase, compiler: str):
        self.entries = database.for_compiler(compiler)

    def retrieve(self, log: str, k: int = 3) -> list[Retrieved]:
        log_words = set(_words(log))
        if not log_words:
            return []
        scored = []
        for entry in self.entries:
            pattern_words = set(_words(entry.log_pattern))
            if not pattern_words:
                continue
            overlap = len(log_words & pattern_words) / len(pattern_words)
            scored.append(Retrieved(entry=entry, score=overlap))
        scored.sort(key=lambda r: -r.score)
        return [r for r in scored[:k] if r.score > 0.2]


class JaccardRetriever:
    """Jaccard similarity of word sets between log and pattern."""

    def __init__(self, database: GuidanceDatabase, compiler: str):
        self.entries = database.for_compiler(compiler)

    def retrieve(self, log: str, k: int = 3) -> list[Retrieved]:
        log_words = set(_words(log))
        scored = []
        for entry in self.entries:
            pattern_words = set(_words(entry.log_pattern))
            union = log_words | pattern_words
            if not union:
                continue
            score = len(log_words & pattern_words) / len(union)
            scored.append(Retrieved(entry=entry, score=score))
        scored.sort(key=lambda r: -r.score)
        return [r for r in scored[:k] if r.score > 0.05]


class TfIdfRetriever:
    """Cosine similarity over TF-IDF bags -- the 'vector database'
    stand-in (no embedding model available offline)."""

    def __init__(self, database: GuidanceDatabase, compiler: str):
        self.entries = database.for_compiler(compiler)
        docs = [_words(e.log_pattern + " " + e.guidance) for e in self.entries]
        self._idf: dict[str, float] = {}
        n_docs = max(len(docs), 1)
        df: Counter = Counter()
        for doc in docs:
            df.update(set(doc))
        for word, count in df.items():
            self._idf[word] = math.log((1 + n_docs) / (1 + count)) + 1.0
        self._vectors = [self._vectorize(doc) for doc in docs]

    def _vectorize(self, words: list[str]) -> dict[str, float]:
        tf = Counter(words)
        vec = {
            w: count * self._idf.get(w, 1.0) for w, count in tf.items()
        }
        norm = math.sqrt(sum(v * v for v in vec.values())) or 1.0
        return {w: v / norm for w, v in vec.items()}

    def retrieve(self, log: str, k: int = 3) -> list[Retrieved]:
        query = self._vectorize(_words(log))
        scored = []
        for entry, vec in zip(self.entries, self._vectors):
            score = sum(weight * vec.get(word, 0.0) for word, weight in query.items())
            scored.append(Retrieved(entry=entry, score=score))
        scored.sort(key=lambda r: -r.score)
        return [r for r in scored[:k] if r.score > 0.05]


RETRIEVER_KINDS = {
    "exact": ExactTagRetriever,
    "fuzzy": FuzzyRetriever,
    "jaccard": JaccardRetriever,
    "tfidf": TfIdfRetriever,
}


def make_retriever(
    kind: str, database: GuidanceDatabase, compiler: str
) -> Retriever:
    """Construct a retriever by kind name (see RETRIEVER_KINDS)."""
    try:
        cls = RETRIEVER_KINDS[kind]
    except KeyError:
        raise RetrievalError(
            f"unknown retriever kind {kind!r}; options: {sorted(RETRIEVER_KINDS)}"
        ) from None
    return cls(database, compiler)
