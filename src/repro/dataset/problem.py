"""Problem definitions for the VerilogEval-style corpora.

A :class:`Problem` bundles everything the benchmarks need: a natural-
language specification in two styles (*human*: high-level intent, the
VerilogEval-Human flavour; *machine*: low-level mechanical description,
the VerilogEval-Machine flavour), the module header given to the model,
and a golden reference implementation used both for differential
functional testing and as the seed for error injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from ..errors import DatasetError

Difficulty = Literal["easy", "hard"]
Kind = Literal["comb", "seq"]


@dataclass(frozen=True)
class Problem:
    """One benchmark problem."""

    id: str
    human_desc: str
    machine_desc: str
    header: str
    reference: str
    kind: Kind
    difficulty: Difficulty
    #: Intrinsic chance that the simulated generator solves the problem's
    #: *logic* (not syntax) in one shot; per-benchmark modifiers apply on
    #: top.  Roughly: how often gpt-3.5 got this problem right.
    base_solve_rate: float = 0.5

    def description(self, benchmark: str = "human") -> str:
        return self.machine_desc if benchmark == "machine" else self.human_desc

    def prompt(self, benchmark: str = "human") -> str:
        """The generation prompt: description + module header."""
        return f"{self.description(benchmark)}\n\n{self.header}"


@dataclass
class ProblemSet:
    """An ordered, id-addressable collection of problems."""

    name: str
    problems: list[Problem] = field(default_factory=list)

    def __iter__(self):
        return iter(self.problems)

    def __len__(self) -> int:
        return len(self.problems)

    def get(self, problem_id: str) -> Problem:
        for problem in self.problems:
            if problem.id == problem_id:
                return problem
        raise DatasetError(f"no problem {problem_id!r} in set {self.name!r}")

    def subset(self, difficulty: Difficulty) -> "ProblemSet":
        return ProblemSet(
            name=f"{self.name}-{difficulty}",
            problems=[p for p in self.problems if p.difficulty == difficulty],
        )

    def ids(self) -> list[str]:
        return [p.id for p in self.problems]

    def add(self, problem: Problem) -> None:
        if any(p.id == problem.id for p in self.problems):
            raise DatasetError(f"duplicate problem id {problem.id!r}")
        self.problems.append(problem)
