"""Logic mutations: changes that still *compile* but alter behaviour.

These model the non-syntax half of LLM failures (wrong operator, wrong
polarity, off-by-one constants, wrong clock edge...).  A mutation may
occasionally be functionally equivalent on the sampled stimulus; that is
fine -- real LLM samples are sometimes accidentally right too.
"""

from __future__ import annotations

import random
import re
from typing import Callable, Optional

from ..diagnostics import compile_source

Mutation = Callable[[str, random.Random], Optional[str]]


def swap_and_or(code: str, rng: random.Random) -> Optional[str]:
    """Swap one bitwise ``&`` with ``|`` (or vice versa)."""
    sites = list(re.finditer(r" ([&|]) ", code))
    if not sites:
        return None
    site = rng.choice(sites)
    other = "|" if site.group(1) == "&" else "&"
    return code[: site.start()] + f" {other} " + code[site.end() :]


def swap_plus_minus(code: str, rng: random.Random) -> Optional[str]:
    """Swap one ``+`` with ``-`` (or vice versa)."""
    sites = list(re.finditer(r" ([+-]) (?!1\b)", code))
    if not sites:
        sites = list(re.finditer(r" ([+-]) ", code))
    if not sites:
        return None
    site = rng.choice(sites)
    other = "-" if site.group(1) == "+" else "+"
    return code[: site.start()] + f" {other} " + code[site.end() :]


def flip_condition(code: str, rng: random.Random) -> Optional[str]:
    """Negate one ``if (signal)`` condition."""
    sites = list(re.finditer(r"if \((\w+)\)", code))
    if not sites:
        return None
    site = rng.choice(sites)
    return code[: site.start()] + f"if (!{site.group(1)})" + code[site.end() :]


def wrong_edge(code: str, rng: random.Random) -> Optional[str]:
    """Clock on ``negedge`` instead of ``posedge``."""
    if "posedge clk" not in code:
        return None
    return code.replace("posedge clk", "negedge clk", 1)


def off_by_one_constant(code: str, rng: random.Random) -> Optional[str]:
    """Bump one sized decimal literal by one (mod width)."""
    sites = list(re.finditer(r"(\d+)'d(\d+)", code))
    if not sites:
        return None
    site = rng.choice(sites)
    width = int(site.group(1))
    value = (int(site.group(2)) + 1) % (1 << width)
    return code[: site.start()] + f"{width}'d{value}" + code[site.end() :]


def swap_ternary_arms(code: str, rng: random.Random) -> Optional[str]:
    """Exchange the two arms of one ternary."""
    sites = list(re.finditer(r"\? ([\w\[\]':]+) : ([\w\[\]':]+)", code))
    if not sites:
        return None
    site = rng.choice(sites)
    return (
        code[: site.start()]
        + f"? {site.group(2)} : {site.group(1)}"
        + code[site.end() :]
    )


def drop_inversion(code: str, rng: random.Random) -> Optional[str]:
    """Remove one ``~`` from an assignment's RHS."""
    sites = list(re.finditer(r"= ~", code))
    if not sites:
        return None
    site = rng.choice(sites)
    return code[: site.start()] + "= " + code[site.end() :]


def swap_comparison(code: str, rng: random.Random) -> Optional[str]:
    """Flip one comparison operator (< <-> >, == <-> !=)."""
    sites = list(re.finditer(r" (<|>|==|!=) ", code))
    if not sites:
        return None
    site = rng.choice(sites)
    flip = {"<": ">", ">": "<", "==": "!=", "!=": "=="}[site.group(1)]
    return code[: site.start()] + f" {flip} " + code[site.end() :]


MUTATIONS: list[Mutation] = [
    swap_and_or,
    swap_plus_minus,
    flip_condition,
    wrong_edge,
    off_by_one_constant,
    swap_ternary_arms,
    drop_inversion,
    swap_comparison,
]


def force_behavior_change(code: str) -> str | None:
    """Deterministic fallback mutation: invert the first driven value.

    Used when random mutations keep landing on functionally equivalent
    code; inverting a driven expression always changes behaviour."""
    site = re.search(r"(assign\s+\w+(?:\[[^\]]*\])?\s*=\s*)([^;]+);", code)
    if site is None:
        site = re.search(r"(<=\s*)([^;]+);", code)
    if site is None:
        return None
    mutated = (
        code[: site.start()]
        + f"{site.group(1)}~({site.group(2).strip()});"
        + code[site.end() :]
    )
    return mutated if compile_source(mutated).ok else None


def mutate_logic_labeled(
    code: str, rng: random.Random, attempts: int = 12
) -> tuple[str, str]:
    """Like :func:`mutate_logic`, but also report *which* mutation
    landed -- ``(mutated_code, bug_class)``.

    The bug class is the mutation function's name (``swap_and_or``,
    ``wrong_edge``, ...), or ``"none"`` when nothing applied.  Draws
    from ``rng`` are identical to :func:`mutate_logic`'s, so labeled
    and unlabeled callers sharing a seed see the same mutants."""
    order = MUTATIONS[:]
    rng.shuffle(order)
    tried = 0
    for mutation in order:
        if tried >= attempts:
            break
        tried += 1
        mutated = mutation(code, rng)
        if mutated is None or mutated == code:
            continue
        if compile_source(mutated).ok:
            return mutated, mutation.__name__
    return code, "none"


def mutate_logic(code: str, rng: random.Random, attempts: int = 12) -> str:
    """Apply one random logic mutation that keeps the code compiling.

    Falls back to the original code when nothing applies (the sample
    then just happens to be correct)."""
    return mutate_logic_labeled(code, rng, attempts)[0]
