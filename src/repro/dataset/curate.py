"""VerilogEval-syntax dataset curation (paper §3.4).

Pipeline, exactly as described:

1. **Sampling** -- draw completions for every VerilogEval problem from
   the (simulated) gpt-3.5 generation model, with both prompting styles;
2. **Filtering** -- extract code from markdown blocks, validate the
   module statement, drop samples with extraneous language or empty
   module bodies, and *retain only samples that fail compilation*;
3. **Clustering** -- DBSCAN with Jaccard distance groups similar
   implementations; representatives keep the error variety broad.

The result is the reproduction's equivalent of the 212-sample
VerilogEval-syntax benchmark.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..core.rulefix import rule_fix, validate_module_text
from ..diagnostics import ErrorCategory
from .cluster import cluster_codes
from .generate import GenerationModel
from .problem import Problem, ProblemSet

#: Size of the paper's dataset; the default target here.
PAPER_DATASET_SIZE = 212


@dataclass(frozen=True)
class SyntaxEntry:
    """One erroneous implementation in the debugging dataset."""

    problem_id: str
    benchmark: str
    description: str
    code: str
    #: Error categories observed by the compiler (Quartus taxonomy).
    categories: tuple[str, ...]
    seed: int = 0

    def error_categories(self) -> tuple[ErrorCategory, ...]:
        return tuple(ErrorCategory(c) for c in self.categories)


@dataclass
class CurationStats:
    sampled: int = 0
    compiled_ok: int = 0
    no_module: int = 0
    empty_body: int = 0
    failing_kept: int = 0
    clusters: int = 0
    final: int = 0


@dataclass
class SyntaxDataset:
    """The VerilogEval-syntax-equivalent debugging dataset."""

    entries: list[SyntaxEntry] = field(default_factory=list)
    stats: CurationStats = field(default_factory=CurationStats)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def category_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for entry in self.entries:
            for category in entry.categories:
                hist[category] = hist.get(category, 0) + 1
        return dict(sorted(hist.items(), key=lambda kv: -kv[1]))

    # -- persistence ------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "entries": [asdict(e) for e in self.entries],
                "stats": asdict(self.stats),
            },
            indent=2,
        )

    @staticmethod
    def from_json(text: str) -> "SyntaxDataset":
        data = json.loads(text)
        entries = [
            SyntaxEntry(
                problem_id=e["problem_id"],
                benchmark=e["benchmark"],
                description=e["description"],
                code=e["code"],
                categories=tuple(e["categories"]),
                seed=e.get("seed", 0),
            )
            for e in data["entries"]
        ]
        stats = CurationStats(**data.get("stats", {}))
        return SyntaxDataset(entries=entries, stats=stats)

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())

    @staticmethod
    def load(path: str) -> "SyntaxDataset":
        with open(path) as f:
            return SyntaxDataset.from_json(f.read())


def build_syntax_dataset(
    problems: ProblemSet,
    samples_per_problem: int = 20,
    benchmarks: tuple[str, ...] = ("human", "machine"),
    target_size: int = PAPER_DATASET_SIZE,
    seed: int = 0,
    eps: float = 0.3,
    temperature: float = 0.4,
) -> SyntaxDataset:
    """Run the full §3.4 curation pipeline."""
    model = GenerationModel(temperature=temperature, seed=seed)
    stats = CurationStats()
    failing: list[SyntaxEntry] = []

    for problem in problems:
        for benchmark in benchmarks:
            for sample in model.sample_n(problem, samples_per_problem, benchmark):
                stats.sampled += 1
                entry = _filter_sample(problem, benchmark, sample.raw, sample.seed, stats)
                if entry is not None:
                    failing.append(entry)
    stats.failing_kept = len(failing)

    representatives = _cluster_and_select(failing, stats, eps)
    final = _fit_to_target(representatives, failing, target_size)
    stats.final = len(final)
    return SyntaxDataset(entries=final, stats=stats)


def _filter_sample(
    problem: Problem, benchmark: str, raw: str, seed: int, stats: CurationStats
) -> SyntaxEntry | None:
    from ..runtime.cache import cached_compile

    fixed = rule_fix(raw)
    if not fixed.has_module:
        stats.no_module += 1
        return None
    if not validate_module_text(fixed.code):
        stats.empty_body += 1
        return None
    result = cached_compile(fixed.code)
    if result.ok:
        stats.compiled_ok += 1
        return None
    return SyntaxEntry(
        problem_id=problem.id,
        benchmark=benchmark,
        description=problem.description(benchmark),
        code=fixed.code,
        categories=tuple(c.value for c in result.categories),
        seed=seed,
    )


def _cluster_and_select(
    failing: list[SyntaxEntry], stats: CurationStats, eps: float
) -> list[SyntaxEntry]:
    """Cluster per problem and keep one representative per cluster."""
    by_problem: dict[str, list[SyntaxEntry]] = {}
    for entry in failing:
        by_problem.setdefault(entry.problem_id, []).append(entry)

    representatives: list[SyntaxEntry] = []
    for entries in by_problem.values():
        result = cluster_codes([e.code for e in entries], eps=eps)
        stats.clusters += result.n_clusters
        representatives.extend(entries[i] for i in result.representatives())
    return representatives


def _fit_to_target(
    representatives: list[SyntaxEntry],
    pool: list[SyntaxEntry],
    target_size: int,
) -> list[SyntaxEntry]:
    """Deterministically trim (evenly spread) or top up to target size."""
    if len(representatives) == target_size:
        return list(representatives)
    if len(representatives) > target_size:
        step = len(representatives) / target_size
        return [representatives[int(i * step)] for i in range(target_size)]
    chosen = list(representatives)
    seen_codes = {e.code for e in chosen}
    for entry in pool:
        if len(chosen) >= target_size:
            break
        if entry.code not in seen_codes:
            chosen.append(entry)
            seen_codes.add(entry.code)
    return chosen
