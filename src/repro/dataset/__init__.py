"""Datasets: VerilogEval-style corpora, simulated LLM sampling, error
injection, and the VerilogEval-syntax curation pipeline (§3.4)."""

from .cluster import (
    DBSCANResult,
    cluster_codes,
    dbscan,
    jaccard_distance,
    shingles,
)
from .corpus import verilogeval
from .curate import (
    PAPER_DATASET_SIZE,
    CurationStats,
    SyntaxDataset,
    SyntaxEntry,
    build_syntax_dataset,
)
from .generate import CodeSample, GenerationModel, logic_rate
from .inject import TRANSFORMS, ErrorInjector, Injection, verify_injection
from .mutate import MUTATIONS, mutate_logic
from .problem import Problem, ProblemSet
from .rtllm import rtllm

__all__ = [
    "CodeSample",
    "CurationStats",
    "DBSCANResult",
    "ErrorInjector",
    "GenerationModel",
    "Injection",
    "MUTATIONS",
    "PAPER_DATASET_SIZE",
    "Problem",
    "ProblemSet",
    "SyntaxDataset",
    "SyntaxEntry",
    "TRANSFORMS",
    "build_syntax_dataset",
    "cluster_codes",
    "dbscan",
    "jaccard_distance",
    "logic_rate",
    "mutate_logic",
    "rtllm",
    "shingles",
    "verify_injection",
    "verilogeval",
]
