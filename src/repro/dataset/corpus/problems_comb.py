"""Combinational problems for the VerilogEval-style corpus.

Each problem mirrors the flavour of VerilogEval tasks: a short
high-level description (human), a mechanical bit-level description
(machine), the module header handed to the generator, and a golden
reference implementation.
"""

from __future__ import annotations

from ..problem import Problem


def _p(**kwargs) -> Problem:
    return Problem(**kwargs)


PROBLEMS: list[Problem] = [
    _p(
        id="wire_pass",
        human_desc="Implement a module that behaves like a wire: copy the input to the output.",
        machine_desc="Assign the value of input in to output out combinationally.",
        header="module top_module (\n  input in,\n  output out\n);",
        reference=(
            "module top_module (\n  input in,\n  output out\n);\n"
            "assign out = in;\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.95,
    ),
    _p(
        id="notgate",
        human_desc="Implement a NOT gate.",
        machine_desc="Assign output out to the bitwise complement of input in.",
        header="module top_module (\n  input in,\n  output out\n);",
        reference=(
            "module top_module (\n  input in,\n  output out\n);\n"
            "assign out = ~in;\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.93,
    ),
    _p(
        id="andgate",
        human_desc="Implement an AND gate with two inputs.",
        machine_desc="Assign output out to the logical AND of inputs a and b.",
        header="module top_module (\n  input a,\n  input b,\n  output out\n);",
        reference=(
            "module top_module (\n  input a,\n  input b,\n  output out\n);\n"
            "assign out = a & b;\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.92,
    ),
    _p(
        id="norgate",
        human_desc="Implement a NOR gate: an OR gate with its output inverted.",
        machine_desc="Assign output out to the complement of the OR of inputs a and b.",
        header="module top_module (\n  input a,\n  input b,\n  output out\n);",
        reference=(
            "module top_module (\n  input a,\n  input b,\n  output out\n);\n"
            "assign out = ~(a | b);\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.9,
    ),
    _p(
        id="xnorgate",
        human_desc="Implement an XNOR gate.",
        machine_desc="Assign output out to the complement of the XOR of inputs a and b.",
        header="module top_module (\n  input a,\n  input b,\n  output out\n);",
        reference=(
            "module top_module (\n  input a,\n  input b,\n  output out\n);\n"
            "assign out = ~(a ^ b);\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.88,
    ),
    _p(
        id="vector_reverse8",
        human_desc="Given an 8-bit input vector [7:0], reverse its bit ordering.",
        machine_desc=(
            "Assign out[0] = in[7], out[1] = in[6], out[2] = in[5], out[3] = in[4], "
            "out[4] = in[3], out[5] = in[2], out[6] = in[1], out[7] = in[0]."
        ),
        header="module top_module (\n  input [7:0] in,\n  output [7:0] out\n);",
        reference=(
            "module top_module (\n  input [7:0] in,\n  output [7:0] out\n);\n"
            "assign out = {in[0], in[1], in[2], in[3], in[4], in[5], in[6], in[7]};\n"
            "endmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.72,
    ),
    _p(
        id="vector_reverse32",
        human_desc="Given a 32-bit input vector, reverse its bit ordering using a loop.",
        machine_desc=(
            "For each i from 0 to 31, assign out[i] = in[31 - i]. "
            "Use a combinational always block with a for loop."
        ),
        header="module top_module (\n  input [31:0] in,\n  output reg [31:0] out\n);",
        reference=(
            "module top_module (\n  input [31:0] in,\n  output reg [31:0] out\n);\n"
            "integer i;\n"
            "always @(*) begin\n"
            "  for (i = 0; i < 32; i = i + 1) begin\n"
            "    out[i] = in[31 - i];\n"
            "  end\n"
            "end\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.6,
    ),
    _p(
        id="mux2to1",
        human_desc="Create a one-bit wide, 2-to-1 multiplexer. When sel=0, choose a. When sel=1, choose b.",
        machine_desc="Assign out = b when sel is 1, else assign out = a.",
        header="module top_module (\n  input a,\n  input b,\n  input sel,\n  output out\n);",
        reference=(
            "module top_module (\n  input a,\n  input b,\n  input sel,\n  output out\n);\n"
            "assign out = sel ? b : a;\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.9,
    ),
    _p(
        id="mux4to1_w8",
        human_desc=(
            "Create an 8-bit wide, 4-to-1 multiplexer selecting among inputs a, b, c, d "
            "based on the 2-bit select input."
        ),
        machine_desc=(
            "Use a case statement on sel: 0 selects a, 1 selects b, 2 selects c, 3 selects d. "
            "Drive the 8-bit output out."
        ),
        header=(
            "module top_module (\n  input [1:0] sel,\n  input [7:0] a,\n  input [7:0] b,\n"
            "  input [7:0] c,\n  input [7:0] d,\n  output reg [7:0] out\n);"
        ),
        reference=(
            "module top_module (\n  input [1:0] sel,\n  input [7:0] a,\n  input [7:0] b,\n"
            "  input [7:0] c,\n  input [7:0] d,\n  output reg [7:0] out\n);\n"
            "always @(*) begin\n"
            "  case (sel)\n"
            "    2'd0: out = a;\n"
            "    2'd1: out = b;\n"
            "    2'd2: out = c;\n"
            "    default: out = d;\n"
            "  endcase\n"
            "end\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.8,
    ),
    _p(
        id="halfadder",
        human_desc="Create a half adder that adds two bits producing a sum and carry-out.",
        machine_desc="Assign sum = a XOR b and cout = a AND b.",
        header="module top_module (\n  input a,\n  input b,\n  output cout,\n  output sum\n);",
        reference=(
            "module top_module (\n  input a,\n  input b,\n  output cout,\n  output sum\n);\n"
            "assign sum = a ^ b;\nassign cout = a & b;\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.86,
    ),
    _p(
        id="fulladder",
        human_desc="Create a full adder: add three bits (including carry-in), produce sum and carry-out.",
        machine_desc="Assign {cout, sum} to the 2-bit sum a + b + cin.",
        header="module top_module (\n  input a,\n  input b,\n  input cin,\n  output cout,\n  output sum\n);",
        reference=(
            "module top_module (\n  input a,\n  input b,\n  input cin,\n  output cout,\n  output sum\n);\n"
            "assign {cout, sum} = a + b + cin;\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.82,
    ),
    _p(
        id="adder8_carry",
        human_desc=(
            "Create an 8-bit adder with carry-out: add two 8-bit numbers producing an 8-bit "
            "sum and a carry-out bit."
        ),
        machine_desc="Assign the concatenation {cout, sum} to the 9-bit value a + b.",
        header=(
            "module top_module (\n  input [7:0] a,\n  input [7:0] b,\n"
            "  output [7:0] sum,\n  output cout\n);"
        ),
        reference=(
            "module top_module (\n  input [7:0] a,\n  input [7:0] b,\n"
            "  output [7:0] sum,\n  output cout\n);\n"
            "assign {cout, sum} = a + b;\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.75,
    ),
    _p(
        id="vector_split",
        human_desc=(
            "A 16-bit input comes in little-endian halfword order; output the upper byte "
            "and lower byte separately."
        ),
        machine_desc="Assign out_hi = in[15:8] and out_lo = in[7:0].",
        header=(
            "module top_module (\n  input [15:0] in,\n  output [7:0] out_hi,\n"
            "  output [7:0] out_lo\n);"
        ),
        reference=(
            "module top_module (\n  input [15:0] in,\n  output [7:0] out_hi,\n"
            "  output [7:0] out_lo\n);\n"
            "assign out_hi = in[15:8];\nassign out_lo = in[7:0];\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.85,
    ),
    _p(
        id="sign_extend8to32",
        human_desc="Sign-extend an 8-bit number to 32 bits.",
        machine_desc="Assign out = {{24 copies of in[7]}, in}.",
        header="module top_module (\n  input [7:0] in,\n  output [31:0] out\n);",
        reference=(
            "module top_module (\n  input [7:0] in,\n  output [31:0] out\n);\n"
            "assign out = {{24{in[7]}}, in};\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.7,
    ),
    _p(
        id="popcount8",
        human_desc="Count the number of '1' bits in an 8-bit input vector.",
        machine_desc=(
            "Use a combinational for loop: initialise count to 0 and add in[i] for "
            "each i in 0..7."
        ),
        header="module top_module (\n  input [7:0] in,\n  output reg [3:0] out\n);",
        reference=(
            "module top_module (\n  input [7:0] in,\n  output reg [3:0] out\n);\n"
            "integer i;\n"
            "always @(*) begin\n"
            "  out = 0;\n"
            "  for (i = 0; i < 8; i = i + 1) begin\n"
            "    out = out + in[i];\n"
            "  end\n"
            "end\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.65,
    ),
    _p(
        id="gates_combo",
        human_desc=(
            "Given two inputs, compute seven outputs: AND, OR, XOR, NAND, NOR, XNOR "
            "and ANDNOTB (a AND NOT b)."
        ),
        machine_desc=(
            "Assign out_and = a&b, out_or = a|b, out_xor = a^b, out_nand = ~(a&b), "
            "out_nor = ~(a|b), out_xnor = ~(a^b), out_anotb = a & ~b."
        ),
        header=(
            "module top_module (\n  input a,\n  input b,\n  output out_and,\n"
            "  output out_or,\n  output out_xor,\n  output out_nand,\n"
            "  output out_nor,\n  output out_xnor,\n  output out_anotb\n);"
        ),
        reference=(
            "module top_module (\n  input a,\n  input b,\n  output out_and,\n"
            "  output out_or,\n  output out_xor,\n  output out_nand,\n"
            "  output out_nor,\n  output out_xnor,\n  output out_anotb\n);\n"
            "assign out_and = a & b;\n"
            "assign out_or = a | b;\n"
            "assign out_xor = a ^ b;\n"
            "assign out_nand = ~(a & b);\n"
            "assign out_nor = ~(a | b);\n"
            "assign out_xnor = ~(a ^ b);\n"
            "assign out_anotb = a & ~b;\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.78,
    ),
    _p(
        id="decoder2to4",
        human_desc="Build a 2-to-4 decoder with an enable input; outputs are one-hot when enabled.",
        machine_desc=(
            "When en is 1, out has exactly the bit at position sel set; when en is 0, "
            "out is zero. Use a shift of 1 by sel or a case statement."
        ),
        header="module top_module (\n  input en,\n  input [1:0] sel,\n  output [3:0] out\n);",
        reference=(
            "module top_module (\n  input en,\n  input [1:0] sel,\n  output [3:0] out\n);\n"
            "assign out = en ? (4'b0001 << sel) : 4'b0000;\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.7,
    ),
    _p(
        id="majority3",
        human_desc="Output 1 when at least two of the three inputs are 1 (majority vote).",
        machine_desc="Assign out = (a&b) | (a&c) | (b&c).",
        header="module top_module (\n  input a,\n  input b,\n  input c,\n  output out\n);",
        reference=(
            "module top_module (\n  input a,\n  input b,\n  input c,\n  output out\n);\n"
            "assign out = (a & b) | (a & c) | (b & c);\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.76,
    ),
    _p(
        id="min2_u8",
        human_desc="Find the minimum of two unsigned 8-bit numbers.",
        machine_desc="Assign min = a < b ? a : b.",
        header="module top_module (\n  input [7:0] a,\n  input [7:0] b,\n  output [7:0] min\n);",
        reference=(
            "module top_module (\n  input [7:0] a,\n  input [7:0] b,\n  output [7:0] min\n);\n"
            "assign min = (a < b) ? a : b;\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.74,
    ),
    _p(
        id="bcd_valid",
        human_desc="Check whether a 4-bit input is a valid BCD digit (0 through 9).",
        machine_desc="Assign valid = in <= 9 (compare against 4'd9).",
        header="module top_module (\n  input [3:0] in,\n  output valid\n);",
        reference=(
            "module top_module (\n  input [3:0] in,\n  output valid\n);\n"
            "assign valid = (in <= 4'd9);\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.8,
    ),
    _p(
        id="priority_encoder8",
        human_desc=(
            "Build an 8-bit priority encoder: output the position of the least "
            "significant set bit, or zero if no bits are set."
        ),
        machine_desc=(
            "Scan bits from 7 down to 0 in a combinational for loop, latching the "
            "index of each set bit so the lowest index wins; default pos to 0."
        ),
        header="module top_module (\n  input [7:0] in,\n  output reg [2:0] pos\n);",
        reference=(
            "module top_module (\n  input [7:0] in,\n  output reg [2:0] pos\n);\n"
            "integer i;\n"
            "always @(*) begin\n"
            "  pos = 0;\n"
            "  for (i = 7; i >= 0; i = i - 1) begin\n"
            "    if (in[i]) pos = i[2:0];\n"
            "  end\n"
            "end\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.3,
    ),
    _p(
        id="bin2gray8",
        human_desc="Convert an 8-bit binary number to Gray code.",
        machine_desc="Assign gray = bin XOR (bin shifted right by one).",
        header="module top_module (\n  input [7:0] bin,\n  output [7:0] gray\n);",
        reference=(
            "module top_module (\n  input [7:0] bin,\n  output [7:0] gray\n);\n"
            "assign gray = bin ^ (bin >> 1);\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.35,
    ),
    _p(
        id="gray2bin8",
        human_desc="Convert an 8-bit Gray code value back to binary.",
        machine_desc=(
            "bin[7] = gray[7]; for i from 6 down to 0, bin[i] = bin[i+1] XOR gray[i]. "
            "Use a combinational for loop."
        ),
        header="module top_module (\n  input [7:0] gray,\n  output reg [7:0] bin\n);",
        reference=(
            "module top_module (\n  input [7:0] gray,\n  output reg [7:0] bin\n);\n"
            "integer i;\n"
            "always @(*) begin\n"
            "  bin[7] = gray[7];\n"
            "  for (i = 6; i >= 0; i = i - 1) begin\n"
            "    bin[i] = bin[i + 1] ^ gray[i];\n"
            "  end\n"
            "end\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.15,
    ),
    _p(
        id="barrel_rotl8",
        human_desc="Rotate an 8-bit value left by a variable amount (0-7).",
        machine_desc="Assign out = (in << amt) | (in >> (8 - amt)), taking the low 8 bits.",
        header="module top_module (\n  input [7:0] in,\n  input [2:0] amt,\n  output [7:0] out\n);",
        reference=(
            "module top_module (\n  input [7:0] in,\n  input [2:0] amt,\n  output [7:0] out\n);\n"
            "wire [15:0] doubled;\n"
            "assign doubled = {in, in} >> (4'd8 - {1'b0, amt});\n"
            "assign out = doubled[7:0];\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.12,
    ),
    _p(
        id="abs_s8",
        human_desc="Compute the absolute value of an 8-bit two's-complement number.",
        machine_desc="If in[7] is set, assign out = 0 - in, else out = in.",
        header="module top_module (\n  input [7:0] in,\n  output [7:0] out\n);",
        reference=(
            "module top_module (\n  input [7:0] in,\n  output [7:0] out\n);\n"
            "assign out = in[7] ? (8'd0 - in) : in;\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.28,
    ),
    _p(
        id="thermometer4",
        human_desc=(
            "Convert a 2-bit count to a 4-bit thermometer code: the count selects how "
            "many low-order output bits are set, with count 3 setting three bits."
        ),
        machine_desc=(
            "Case on the count: 0 -> 4'b0000, 1 -> 4'b0001, 2 -> 4'b0011, 3 -> 4'b0111."
        ),
        header="module top_module (\n  input [1:0] count,\n  output reg [3:0] out\n);",
        reference=(
            "module top_module (\n  input [1:0] count,\n  output reg [3:0] out\n);\n"
            "always @(*) begin\n"
            "  case (count)\n"
            "    2'd0: out = 4'b0000;\n"
            "    2'd1: out = 4'b0001;\n"
            "    2'd2: out = 4'b0011;\n"
            "    default: out = 4'b0111;\n"
            "  endcase\n"
            "end\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.25,
    ),
    _p(
        id="conway_neighbors",
        human_desc=(
            "Given a 4x4 grid of cells packed into a 16-bit vector (row-major), output "
            "for the inner 2x2 cells the count of live neighbours, 4 bits per cell. "
            "Cells outside the grid are dead."
        ),
        machine_desc=(
            "For each inner cell (r,c) with r and c in 1..2, sum the eight neighbours "
            "grid[(r+dr)*4 + (c+dc)] for dr,dc in -1..1 excluding (0,0), and place the "
            "4-bit count at counts[(r-1)*2 + (c-1)] * 4 +: 4. Use nested for loops."
        ),
        header="module top_module (\n  input [15:0] grid,\n  output reg [15:0] counts\n);",
        reference=(
            "module top_module (\n  input [15:0] grid,\n  output reg [15:0] counts\n);\n"
            "integer r;\ninteger c;\ninteger dr;\ninteger dc;\n"
            "reg [3:0] n;\n"
            "always @(*) begin\n"
            "  counts = 0;\n"
            "  for (r = 1; r < 3; r = r + 1) begin\n"
            "    for (c = 1; c < 3; c = c + 1) begin\n"
            "      n = 0;\n"
            "      for (dr = -1; dr < 2; dr = dr + 1) begin\n"
            "        for (dc = -1; dc < 2; dc = dc + 1) begin\n"
            "          if (!(dr == 0 && dc == 0)) begin\n"
            "            n = n + grid[(r + dr) * 4 + (c + dc)];\n"
            "          end\n"
            "        end\n"
            "      end\n"
            "      counts[((r - 1) * 2 + (c - 1)) * 4 +: 4] = n;\n"
            "    end\n"
            "  end\n"
            "end\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.04,
    ),
    _p(
        id="leading_zeros8",
        human_desc="Count the leading zeros of an 8-bit value (8 when the input is zero).",
        machine_desc=(
            "Initialise count to 8; scan i from 0 to 7 and whenever in[i] is set, "
            "set count = 7 - i. The final value is the number of leading zeros."
        ),
        header="module top_module (\n  input [7:0] in,\n  output reg [3:0] count\n);",
        reference=(
            "module top_module (\n  input [7:0] in,\n  output reg [3:0] count\n);\n"
            "integer i;\n"
            "always @(*) begin\n"
            "  count = 8;\n"
            "  for (i = 0; i < 8; i = i + 1) begin\n"
            "    if (in[i]) count = 7 - i;\n"
            "  end\n"
            "end\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.1,
    ),
    _p(
        id="seven_seg_digit",
        human_desc=(
            "Drive a seven-segment display (active-high segments a-g packed into a 7-bit "
            "output, segment a in bit 6) for hexadecimal digits 0-9; output all segments "
            "off for inputs above 9."
        ),
        machine_desc=(
            "Case on the 4-bit digit: 0 -> 7'b1111110, 1 -> 7'b0110000, 2 -> 7'b1101101, "
            "3 -> 7'b1111001, 4 -> 7'b0110011, 5 -> 7'b1011011, 6 -> 7'b1011111, "
            "7 -> 7'b1110000, 8 -> 7'b1111111, 9 -> 7'b1111011, default -> 0."
        ),
        header="module top_module (\n  input [3:0] digit,\n  output reg [6:0] seg\n);",
        reference=(
            "module top_module (\n  input [3:0] digit,\n  output reg [6:0] seg\n);\n"
            "always @(*) begin\n"
            "  case (digit)\n"
            "    4'd0: seg = 7'b1111110;\n"
            "    4'd1: seg = 7'b0110000;\n"
            "    4'd2: seg = 7'b1101101;\n"
            "    4'd3: seg = 7'b1111001;\n"
            "    4'd4: seg = 7'b0110011;\n"
            "    4'd5: seg = 7'b1011011;\n"
            "    4'd6: seg = 7'b1011111;\n"
            "    4'd7: seg = 7'b1110000;\n"
            "    4'd8: seg = 7'b1111111;\n"
            "    4'd9: seg = 7'b1111011;\n"
            "    default: seg = 7'b0000000;\n"
            "  endcase\n"
            "end\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.2,
    ),
    _p(
        id="saturating_add_u8",
        human_desc="Add two unsigned 8-bit numbers with saturation: clamp the result at 255.",
        machine_desc=(
            "Compute the 9-bit sum {1'b0,a} + {1'b0,b}; if bit 8 is set output 8'hFF, "
            "else output the low 8 bits."
        ),
        header="module top_module (\n  input [7:0] a,\n  input [7:0] b,\n  output [7:0] out\n);",
        reference=(
            "module top_module (\n  input [7:0] a,\n  input [7:0] b,\n  output [7:0] out\n);\n"
            "wire [8:0] sum;\n"
            "assign sum = a + b;\n"
            "assign out = sum[8] ? 8'hFF : sum[7:0];\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.3,
    ),
]
