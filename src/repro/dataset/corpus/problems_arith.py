"""Arithmetic and word-level combinational problems (corpus extension)."""

from __future__ import annotations

from ..problem import Problem


def _p(**kwargs) -> Problem:
    return Problem(**kwargs)


PROBLEMS: list[Problem] = [
    _p(
        id="add_sub16",
        human_desc=(
            "Build a 16-bit adder-subtractor: when sub is 1 compute a - b, else "
            "a + b, using two's-complement (invert b and feed sub as carry-in)."
        ),
        machine_desc="Assign out = a + (b XOR {16 copies of sub}) + sub.",
        header=(
            "module top_module (\n  input [15:0] a,\n  input [15:0] b,\n"
            "  input sub,\n  output [15:0] out\n);"
        ),
        reference=(
            "module top_module (\n  input [15:0] a,\n  input [15:0] b,\n"
            "  input sub,\n  output [15:0] out\n);\n"
            "assign out = a + (b ^ {16{sub}}) + sub;\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.6,
    ),
    _p(
        id="max3_u8",
        human_desc="Output the maximum of three unsigned 8-bit inputs.",
        machine_desc=(
            "Use a wire m = a > b ? a : b, then assign max = m > c ? m : c."
        ),
        header=(
            "module top_module (\n  input [7:0] a,\n  input [7:0] b,\n"
            "  input [7:0] c,\n  output [7:0] max\n);"
        ),
        reference=(
            "module top_module (\n  input [7:0] a,\n  input [7:0] b,\n"
            "  input [7:0] c,\n  output [7:0] max\n);\n"
            "wire [7:0] m;\n"
            "assign m = (a > b) ? a : b;\n"
            "assign max = (m > c) ? m : c;\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.7,
    ),
    _p(
        id="parity_gen9",
        human_desc=(
            "Append an odd-parity bit to an 8-bit byte so the 9-bit result always "
            "has an odd number of ones."
        ),
        machine_desc="Assign out = {~(^in), in}.",
        header="module top_module (\n  input [7:0] in,\n  output [8:0] out\n);",
        reference=(
            "module top_module (\n  input [7:0] in,\n  output [8:0] out\n);\n"
            "assign out = {~(^in), in};\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.62,
    ),
    _p(
        id="swap_bytes16",
        human_desc="Swap the two bytes of a 16-bit halfword.",
        machine_desc="Assign out = {in[7:0], in[15:8]}.",
        header="module top_module (\n  input [15:0] in,\n  output [15:0] out\n);",
        reference=(
            "module top_module (\n  input [15:0] in,\n  output [15:0] out\n);\n"
            "assign out = {in[7:0], in[15:8]};\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.8,
    ),
    _p(
        id="zero_one_detect",
        human_desc=(
            "Given a 4-bit input, raise all_zero when every bit is 0 and all_one "
            "when every bit is 1."
        ),
        machine_desc="Assign all_zero = ~(|in) and all_one = &in.",
        header=(
            "module top_module (\n  input [3:0] in,\n  output all_zero,\n"
            "  output all_one\n);"
        ),
        reference=(
            "module top_module (\n  input [3:0] in,\n  output all_zero,\n"
            "  output all_one\n);\n"
            "assign all_zero = ~(|in);\nassign all_one = &in;\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.78,
    ),
    _p(
        id="mux8to1_w4",
        human_desc="Create a 4-bit wide 8-to-1 multiplexer using an indexed part-select.",
        machine_desc="Assign out = in[sel * 4 +: 4] from the packed 32-bit input.",
        header=(
            "module top_module (\n  input [31:0] in,\n  input [2:0] sel,\n"
            "  output [3:0] out\n);"
        ),
        reference=(
            "module top_module (\n  input [31:0] in,\n  input [2:0] sel,\n"
            "  output [3:0] out\n);\n"
            "assign out = in[sel * 4 +: 4];\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.2,
    ),
    _p(
        id="ones_positions",
        human_desc=(
            "Output the index of the most significant set bit of a 8-bit input "
            "(0 when the input is zero), plus a valid flag."
        ),
        machine_desc=(
            "valid = |in. Scan i from 0 to 7 in a combinational loop; whenever "
            "in[i] is set, record pos = i. Default pos to 0."
        ),
        header=(
            "module top_module (\n  input [7:0] in,\n  output reg [2:0] pos,\n"
            "  output valid\n);"
        ),
        reference=(
            "module top_module (\n  input [7:0] in,\n  output reg [2:0] pos,\n"
            "  output valid\n);\n"
            "integer i;\n"
            "always @(*) begin\n"
            "  pos = 0;\n"
            "  for (i = 0; i < 8; i = i + 1) begin\n"
            "    if (in[i]) pos = i[2:0];\n"
            "  end\n"
            "end\n"
            "assign valid = |in;\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.25,
    ),
    _p(
        id="bcd_to_bin",
        human_desc="Convert a two-digit BCD value (tens, ones) to 7-bit binary.",
        machine_desc="Assign bin = tens * 10 + ones.",
        header=(
            "module top_module (\n  input [3:0] tens,\n  input [3:0] ones,\n"
            "  output [6:0] bin\n);"
        ),
        reference=(
            "module top_module (\n  input [3:0] tens,\n  input [3:0] ones,\n"
            "  output [6:0] bin\n);\n"
            "assign bin = tens * 7'd10 + ones;\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.35,
    ),
    _p(
        id="interleave8",
        human_desc=(
            "Interleave two 4-bit inputs bit by bit: output bits alternate "
            "b[3], a[3], b[2], a[2], ... down to a[0]."
        ),
        machine_desc=(
            "Assign out = {b[3], a[3], b[2], a[2], b[1], a[1], b[0], a[0]}."
        ),
        header=(
            "module top_module (\n  input [3:0] a,\n  input [3:0] b,\n"
            "  output [7:0] out\n);"
        ),
        reference=(
            "module top_module (\n  input [3:0] a,\n  input [3:0] b,\n"
            "  output [7:0] out\n);\n"
            "assign out = {b[3], a[3], b[2], a[2], b[1], a[1], b[0], a[0]};\n"
            "endmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.28,
    ),
    _p(
        id="round_even4",
        human_desc=(
            "Divide an unsigned 8-bit value by 16, rounding to nearest with "
            "ties going to even (banker's rounding)."
        ),
        machine_desc=(
            "q = in[7:4]; r = in[3:0]. Round up when r > 8, or when r == 8 and "
            "q[0] is 1. Output q plus the rounding increment, 5 bits wide."
        ),
        header="module top_module (\n  input [7:0] in,\n  output [4:0] out\n);",
        reference=(
            "module top_module (\n  input [7:0] in,\n  output [4:0] out\n);\n"
            "wire [3:0] q;\n"
            "wire [3:0] r;\n"
            "wire up;\n"
            "assign q = in[7:4];\n"
            "assign r = in[3:0];\n"
            "assign up = (r > 4'd8) | ((r == 4'd8) & q[0]);\n"
            "assign out = q + up;\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.08,
    ),
    _p(
        id="gridmult2x2",
        human_desc=(
            "Multiply two 2x2 bit matrices over GF(2): entries are single bits, "
            "addition is XOR, multiplication is AND. Inputs and output are packed "
            "row-major {r0c0, r0c1, r1c0, r1c1}."
        ),
        machine_desc=(
            "c[3] = a[3]&b[3] ^ a[2]&b[1]; c[2] = a[3]&b[2] ^ a[2]&b[0]; "
            "c[1] = a[1]&b[3] ^ a[0]&b[1]; c[0] = a[1]&b[2] ^ a[0]&b[0]. "
            "Bit 3 is r0c0 and bit 0 is r1c1."
        ),
        header=(
            "module top_module (\n  input [3:0] a,\n  input [3:0] b,\n"
            "  output [3:0] c\n);"
        ),
        reference=(
            "module top_module (\n  input [3:0] a,\n  input [3:0] b,\n"
            "  output [3:0] c\n);\n"
            "assign c[3] = (a[3] & b[3]) ^ (a[2] & b[1]);\n"
            "assign c[2] = (a[3] & b[2]) ^ (a[2] & b[0]);\n"
            "assign c[1] = (a[1] & b[3]) ^ (a[0] & b[1]);\n"
            "assign c[0] = (a[1] & b[2]) ^ (a[0] & b[0]);\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.06,
    ),
    _p(
        id="hamming74_encode",
        human_desc=(
            "Encode 4 data bits into a 7-bit Hamming(7,4) codeword with even "
            "parity bits at positions 1, 2 and 4 (output bit 0 is position 1)."
        ),
        machine_desc=(
            "p1 = d0^d1^d3, p2 = d0^d2^d3, p4 = d1^d2^d3; "
            "out = {d[3], d[2], d[1], p4, d[0], p2, p1} with d = data."
        ),
        header="module top_module (\n  input [3:0] d,\n  output [6:0] out\n);",
        reference=(
            "module top_module (\n  input [3:0] d,\n  output [6:0] out\n);\n"
            "wire p1;\n"
            "wire p2;\n"
            "wire p4;\n"
            "assign p1 = d[0] ^ d[1] ^ d[3];\n"
            "assign p2 = d[0] ^ d[2] ^ d[3];\n"
            "assign p4 = d[1] ^ d[2] ^ d[3];\n"
            "assign out = {d[3], d[2], d[1], p4, d[0], p2, p1};\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.1,
    ),
]
