"""Sequential (clocked) problems for the VerilogEval-style corpus."""

from __future__ import annotations

from ..problem import Problem


def _p(**kwargs) -> Problem:
    return Problem(**kwargs)


PROBLEMS: list[Problem] = [
    _p(
        id="dff",
        human_desc="Create a single D flip-flop triggered on the positive clock edge.",
        machine_desc="On every posedge of clk, assign q <= d (nonblocking).",
        header="module top_module (\n  input clk,\n  input d,\n  output reg q\n);",
        reference=(
            "module top_module (\n  input clk,\n  input d,\n  output reg q\n);\n"
            "always @(posedge clk) begin\n  q <= d;\nend\nendmodule\n"
        ),
        kind="seq", difficulty="easy", base_solve_rate=0.9,
    ),
    _p(
        id="dff8_reset",
        human_desc=(
            "Create 8 D flip-flops with an active-high synchronous reset that clears "
            "them to zero."
        ),
        machine_desc=(
            "On posedge clk: if reset is 1, q <= 0, else q <= d. q and d are 8 bits."
        ),
        header=(
            "module top_module (\n  input clk,\n  input reset,\n  input [7:0] d,\n"
            "  output reg [7:0] q\n);"
        ),
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  input [7:0] d,\n"
            "  output reg [7:0] q\n);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) q <= 8'd0;\n  else q <= d;\nend\nendmodule\n"
        ),
        kind="seq", difficulty="easy", base_solve_rate=0.82,
    ),
    _p(
        id="dffe",
        human_desc="Create a D flip-flop with a write-enable input.",
        machine_desc="On posedge clk: if en is 1, q <= d; otherwise q keeps its value.",
        header="module top_module (\n  input clk,\n  input en,\n  input d,\n  output reg q\n);",
        reference=(
            "module top_module (\n  input clk,\n  input en,\n  input d,\n  output reg q\n);\n"
            "always @(posedge clk) begin\n  if (en) q <= d;\nend\nendmodule\n"
        ),
        kind="seq", difficulty="easy", base_solve_rate=0.8,
    ),
    _p(
        id="counter4_reset",
        human_desc=(
            "Build a 4-bit binary counter that counts up once per clock cycle, with a "
            "synchronous active-high reset to zero."
        ),
        machine_desc="On posedge clk: if reset, q <= 0, else q <= q + 1.",
        header="module top_module (\n  input clk,\n  input reset,\n  output reg [3:0] q\n);",
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  output reg [3:0] q\n);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) q <= 4'd0;\n  else q <= q + 1;\nend\nendmodule\n"
        ),
        kind="seq", difficulty="easy", base_solve_rate=0.78,
    ),
    _p(
        id="counter_load",
        human_desc=(
            "Build an 8-bit up counter with synchronous reset and a parallel load input "
            "that takes priority over counting."
        ),
        machine_desc=(
            "On posedge clk: if reset, q <= 0; else if load, q <= d; else q <= q + 1."
        ),
        header=(
            "module top_module (\n  input clk,\n  input reset,\n  input load,\n"
            "  input [7:0] d,\n  output reg [7:0] q\n);"
        ),
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  input load,\n"
            "  input [7:0] d,\n  output reg [7:0] q\n);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) q <= 8'd0;\n"
            "  else if (load) q <= d;\n"
            "  else q <= q + 1;\nend\nendmodule\n"
        ),
        kind="seq", difficulty="easy", base_solve_rate=0.7,
    ),
    _p(
        id="toggle_ff",
        human_desc="Build a toggle flip-flop: the output flips whenever t is high at a clock edge; synchronous reset.",
        machine_desc="On posedge clk: if reset, q <= 0; else if t, q <= ~q.",
        header="module top_module (\n  input clk,\n  input reset,\n  input t,\n  output reg q\n);",
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  input t,\n  output reg q\n);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) q <= 1'b0;\n  else if (t) q <= ~q;\nend\nendmodule\n"
        ),
        kind="seq", difficulty="easy", base_solve_rate=0.72,
    ),
    _p(
        id="shift4_left",
        human_desc=(
            "Build a 4-bit shift register that shifts in a serial bit each cycle "
            "(towards the MSB), with synchronous reset."
        ),
        machine_desc="On posedge clk: if reset, q <= 0; else q <= {q[2:0], din}.",
        header="module top_module (\n  input clk,\n  input reset,\n  input din,\n  output reg [3:0] q\n);",
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  input din,\n  output reg [3:0] q\n);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) q <= 4'd0;\n  else q <= {q[2:0], din};\nend\nendmodule\n"
        ),
        kind="seq", difficulty="easy", base_solve_rate=0.68,
    ),
    _p(
        id="edge_detect_rise",
        human_desc=(
            "Detect rising edges of a slow input signal: output a one-cycle pulse the "
            "cycle after the input goes from 0 to 1. Synchronous reset clears state."
        ),
        machine_desc=(
            "Keep a one-cycle-delayed copy prev of in. On posedge clk: if reset, "
            "prev <= 0 and pulse <= 0; else pulse <= in & ~prev and prev <= in."
        ),
        header="module top_module (\n  input clk,\n  input reset,\n  input in,\n  output reg pulse\n);",
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  input in,\n  output reg pulse\n);\n"
            "reg prev;\n"
            "always @(posedge clk) begin\n"
            "  if (reset) begin\n    prev <= 1'b0;\n    pulse <= 1'b0;\n  end\n"
            "  else begin\n    pulse <= in & ~prev;\n    prev <= in;\n  end\n"
            "end\nendmodule\n"
        ),
        kind="seq", difficulty="easy", base_solve_rate=0.55,
    ),
    _p(
        id="dff8_async",
        human_desc="Create 8 D flip-flops with an active-high asynchronous reset.",
        machine_desc=(
            "Use always @(posedge clk or posedge areset): if areset, q <= 0, else q <= d."
        ),
        header=(
            "module top_module (\n  input clk,\n  input areset,\n  input [7:0] d,\n"
            "  output reg [7:0] q\n);"
        ),
        reference=(
            "module top_module (\n  input clk,\n  input areset,\n  input [7:0] d,\n"
            "  output reg [7:0] q\n);\n"
            "always @(posedge clk or posedge areset) begin\n"
            "  if (areset) q <= 8'd0;\n  else q <= d;\nend\nendmodule\n"
        ),
        kind="seq", difficulty="easy", base_solve_rate=0.7,
    ),
    _p(
        id="counter_down",
        human_desc=(
            "Build a 4-bit down counter with synchronous reset to 15; it wraps from 0 "
            "back to 15."
        ),
        machine_desc="On posedge clk: if reset, q <= 4'hF, else q <= q - 1.",
        header="module top_module (\n  input clk,\n  input reset,\n  output reg [3:0] q\n);",
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  output reg [3:0] q\n);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) q <= 4'hF;\n  else q <= q - 1;\nend\nendmodule\n"
        ),
        kind="seq", difficulty="easy", base_solve_rate=0.66,
    ),
    _p(
        id="counter_1to12",
        human_desc=(
            "Build a counter that counts from 1 through 12 and wraps back to 1; "
            "synchronous reset sets it to 1."
        ),
        machine_desc=(
            "On posedge clk: if reset or q == 12, q <= 1, else q <= q + 1."
        ),
        header="module top_module (\n  input clk,\n  input reset,\n  output reg [3:0] q\n);",
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  output reg [3:0] q\n);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) q <= 4'd1;\n"
            "  else if (q == 4'd12) q <= 4'd1;\n"
            "  else q <= q + 1;\nend\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.3,
    ),
    _p(
        id="bcd_counter_digit",
        human_desc=(
            "Build a decade (BCD) counter digit that counts 0-9 with an enable, "
            "producing a carry-out pulse when it rolls over from 9; synchronous reset."
        ),
        machine_desc=(
            "On posedge clk: if reset, q <= 0; else if en, q <= (q == 9) ? 0 : q + 1. "
            "Assign carry combinationally as en && q == 9."
        ),
        header=(
            "module top_module (\n  input clk,\n  input reset,\n  input en,\n"
            "  output reg [3:0] q,\n  output carry\n);"
        ),
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  input en,\n"
            "  output reg [3:0] q,\n  output carry\n);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) q <= 4'd0;\n"
            "  else if (en) q <= (q == 4'd9) ? 4'd0 : q + 1;\n"
            "end\n"
            "assign carry = en && (q == 4'd9);\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.2,
    ),
    _p(
        id="lfsr5",
        human_desc=(
            "Implement a 5-bit maximal-length Galois LFSR with taps at positions 5 and 3; "
            "synchronous reset loads 5'h1."
        ),
        machine_desc=(
            "On posedge clk: if reset, q <= 5'h1; else q <= {q[0], q[4], q[3] ^ q[0], "
            "q[2], q[1]}."
        ),
        header="module top_module (\n  input clk,\n  input reset,\n  output reg [4:0] q\n);",
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  output reg [4:0] q\n);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) q <= 5'h1;\n"
            "  else q <= {q[0], q[4], q[3] ^ q[0], q[2], q[1]};\n"
            "end\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.1,
    ),
    _p(
        id="rule90",
        human_desc=(
            "Implement one row of a Rule 90 cellular automaton over 16 cells: each "
            "cycle every cell becomes the XOR of its two neighbours (boundaries are 0). "
            "A load input replaces the state with data."
        ),
        machine_desc=(
            "On posedge clk: if load, q <= data; else q <= {1'b0, q[15:1]} ^ "
            "{q[14:0], 1'b0}."
        ),
        header=(
            "module top_module (\n  input clk,\n  input load,\n  input [15:0] data,\n"
            "  output reg [15:0] q\n);"
        ),
        reference=(
            "module top_module (\n  input clk,\n  input load,\n  input [15:0] data,\n"
            "  output reg [15:0] q\n);\n"
            "always @(posedge clk) begin\n"
            "  if (load) q <= data;\n"
            "  else q <= {1'b0, q[15:1]} ^ {q[14:0], 1'b0};\n"
            "end\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.15,
    ),
    _p(
        id="history_shift",
        human_desc=(
            "Keep a 32-bit branch history register: on each taken/not-taken event "
            "(train_en), shift in the taken bit from the LSB side; areset clears it."
        ),
        machine_desc=(
            "On posedge clk or posedge areset: if areset, history <= 0; else if "
            "train_en, history <= {history[30:0], taken}."
        ),
        header=(
            "module top_module (\n  input clk,\n  input areset,\n  input train_en,\n"
            "  input taken,\n  output reg [31:0] history\n);"
        ),
        reference=(
            "module top_module (\n  input clk,\n  input areset,\n  input train_en,\n"
            "  input taken,\n  output reg [31:0] history\n);\n"
            "always @(posedge clk or posedge areset) begin\n"
            "  if (areset) history <= 32'd0;\n"
            "  else if (train_en) history <= {history[30:0], taken};\n"
            "end\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.25,
    ),
    _p(
        id="timer_shot",
        human_desc=(
            "Build a one-shot 10-cycle timer: a load pulse arms it with a 4-bit count; "
            "it counts down to zero and asserts done while the count is zero."
        ),
        machine_desc=(
            "On posedge clk: if load, count <= data; else if count != 0, "
            "count <= count - 1. Assign done = (count == 0)."
        ),
        header=(
            "module top_module (\n  input clk,\n  input load,\n  input [3:0] data,\n"
            "  output done\n);"
        ),
        reference=(
            "module top_module (\n  input clk,\n  input load,\n  input [3:0] data,\n"
            "  output done\n);\n"
            "reg [3:0] count;\n"
            "initial count = 4'd0;\n"
            "always @(posedge clk) begin\n"
            "  if (load) count <= data;\n"
            "  else if (count != 4'd0) count <= count - 1;\n"
            "end\n"
            "assign done = (count == 4'd0);\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.18,
    ),
    _p(
        id="johnson4",
        human_desc=(
            "Build a 4-bit Johnson (twisted-ring) counter with synchronous reset: the "
            "inverted MSB feeds back into the LSB."
        ),
        machine_desc="On posedge clk: if reset, q <= 0; else q <= {q[2:0], ~q[3]}.",
        header="module top_module (\n  input clk,\n  input reset,\n  output reg [3:0] q\n);",
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  output reg [3:0] q\n);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) q <= 4'd0;\n  else q <= {q[2:0], ~q[3]};\nend\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.28,
    ),
    _p(
        id="serial_parity",
        human_desc=(
            "Accumulate the even parity of a serial bit stream: the output is the XOR "
            "of every bit seen since the last synchronous reset."
        ),
        machine_desc="On posedge clk: if reset, parity <= 0; else parity <= parity ^ in.",
        header="module top_module (\n  input clk,\n  input reset,\n  input in,\n  output reg parity\n);",
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  input in,\n  output reg parity\n);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) parity <= 1'b0;\n  else parity <= parity ^ in;\nend\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.35,
    ),
]
