"""Finite-state-machine problems (the hard end of the corpus)."""

from __future__ import annotations

from ..problem import Problem


def _p(**kwargs) -> Problem:
    return Problem(**kwargs)


PROBLEMS: list[Problem] = [
    _p(
        id="fsm_moore2",
        human_desc=(
            "Implement a two-state Moore machine: in state OFF the output is 0 and a 1 "
            "on the input moves to ON; in state ON the output is 1 and a 1 on the input "
            "moves back to OFF. Synchronous reset to OFF."
        ),
        machine_desc=(
            "State register: 0=OFF, 1=ON. On posedge clk: if reset, state <= OFF; else "
            "state <= in ? ~state : state. Output out = state."
        ),
        header="module top_module (\n  input clk,\n  input reset,\n  input in,\n  output out\n);",
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  input in,\n  output out\n);\n"
            "reg state;\n"
            "always @(posedge clk) begin\n"
            "  if (reset) state <= 1'b0;\n"
            "  else if (in) state <= ~state;\n"
            "end\n"
            "assign out = state;\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.3,
    ),
    _p(
        id="fsm_seq101",
        human_desc=(
            "Detect the bit pattern 101 in a serial stream (overlapping allowed): the "
            "output pulses for one cycle when the last three bits seen are 101. "
            "Synchronous reset."
        ),
        machine_desc=(
            "Use a 4-state FSM with states S0 (nothing), S1 (saw 1), S10 (saw 10), "
            "S101 (matched). From S1 a 0 goes to S10; from S10 a 1 goes to S101 and a "
            "0 goes to S0; from S101 a 0 goes to S10 and a 1 goes to S1. "
            "Output found = (state == S101)."
        ),
        header="module top_module (\n  input clk,\n  input reset,\n  input in,\n  output found\n);",
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  input in,\n  output found\n);\n"
            "localparam S0 = 2'd0;\n"
            "localparam S1 = 2'd1;\n"
            "localparam S10 = 2'd2;\n"
            "localparam S101 = 2'd3;\n"
            "reg [1:0] state;\n"
            "always @(posedge clk) begin\n"
            "  if (reset) state <= S0;\n"
            "  else begin\n"
            "    case (state)\n"
            "      S0: state <= in ? S1 : S0;\n"
            "      S1: state <= in ? S1 : S10;\n"
            "      S10: state <= in ? S101 : S0;\n"
            "      default: state <= in ? S1 : S10;\n"
            "    endcase\n"
            "  end\n"
            "end\n"
            "assign found = (state == S101);\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.08,
    ),
    _p(
        id="fsm_traffic",
        human_desc=(
            "Implement a traffic-light controller cycling GREEN (4 cycles) -> YELLOW "
            "(1 cycle) -> RED (3 cycles) -> GREEN. Outputs are one-hot {red, yellow, "
            "green}. Synchronous reset starts at GREEN with the timer cleared."
        ),
        machine_desc=(
            "Keep a 2-bit state (0=G,1=Y,2=R) and a 3-bit timer counting cycles in "
            "state. Durations: G=4, Y=1, R=3. On the last cycle of a state advance to "
            "the next state and clear the timer, else increment the timer. Outputs: "
            "green = state==0, yellow = state==1, red = state==2."
        ),
        header=(
            "module top_module (\n  input clk,\n  input reset,\n  output green,\n"
            "  output yellow,\n  output red\n);"
        ),
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  output green,\n"
            "  output yellow,\n  output red\n);\n"
            "localparam G = 2'd0;\n"
            "localparam Y = 2'd1;\n"
            "localparam R = 2'd2;\n"
            "reg [1:0] state;\n"
            "reg [2:0] timer;\n"
            "reg [2:0] limit;\n"
            "always @(*) begin\n"
            "  case (state)\n"
            "    G: limit = 3'd4;\n"
            "    Y: limit = 3'd1;\n"
            "    default: limit = 3'd3;\n"
            "  endcase\n"
            "end\n"
            "always @(posedge clk) begin\n"
            "  if (reset) begin\n"
            "    state <= G;\n    timer <= 3'd0;\n"
            "  end\n"
            "  else if (timer == limit - 1) begin\n"
            "    timer <= 3'd0;\n"
            "    state <= (state == R) ? G : state + 1;\n"
            "  end\n"
            "  else timer <= timer + 1;\n"
            "end\n"
            "assign green = (state == G);\n"
            "assign yellow = (state == Y);\n"
            "assign red = (state == R);\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.05,
    ),
    _p(
        id="fsm_onehot3",
        human_desc=(
            "Implement a 3-state one-hot FSM that advances A -> B -> C -> A whenever "
            "go is high; synchronous reset returns to A. Output busy is high in states "
            "B and C."
        ),
        machine_desc=(
            "State register is 3 bits one-hot (A=001, B=010, C=100). On posedge clk: "
            "reset loads A; if go, rotate left by one (C wraps to A); else hold. "
            "busy = state[1] | state[2]."
        ),
        header="module top_module (\n  input clk,\n  input reset,\n  input go,\n  output busy\n);",
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  input go,\n  output busy\n);\n"
            "reg [2:0] state;\n"
            "always @(posedge clk) begin\n"
            "  if (reset) state <= 3'b001;\n"
            "  else if (go) state <= {state[1:0], state[2]};\n"
            "end\n"
            "assign busy = state[1] | state[2];\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.15,
    ),
    _p(
        id="fsm_mealy_ones",
        human_desc=(
            "Mealy machine: output 1 exactly when the current input bit and the "
            "previous input bit are both 1. Synchronous reset clears the memory."
        ),
        machine_desc=(
            "Register prev holds last cycle's input. out = in & prev (combinational). "
            "On posedge clk: if reset, prev <= 0, else prev <= in."
        ),
        header="module top_module (\n  input clk,\n  input reset,\n  input in,\n  output out\n);",
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  input in,\n  output out\n);\n"
            "reg prev;\n"
            "always @(posedge clk) begin\n"
            "  if (reset) prev <= 1'b0;\n  else prev <= in;\n"
            "end\n"
            "assign out = in & prev;\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.22,
    ),
    _p(
        id="fsm_gray_counter3",
        human_desc=(
            "Build a 3-bit Gray-code counter: the output steps through the 8-entry "
            "Gray sequence each cycle and wraps; synchronous reset to 0."
        ),
        machine_desc=(
            "Keep a 3-bit binary counter bin; on posedge clk: if reset, bin <= 0, else "
            "bin <= bin + 1. Output q = bin ^ (bin >> 1)."
        ),
        header="module top_module (\n  input clk,\n  input reset,\n  output [2:0] q\n);",
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  output [2:0] q\n);\n"
            "reg [2:0] bin;\n"
            "always @(posedge clk) begin\n"
            "  if (reset) bin <= 3'd0;\n  else bin <= bin + 1;\n"
            "end\n"
            "assign q = bin ^ (bin >> 1);\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.12,
    ),
]
