"""Problem corpora.

:func:`verilogeval` returns the VerilogEval-style problem set (the
human/machine descriptions live on each problem); :func:`rtllm` (in
:mod:`repro.dataset.rtllm`) provides the larger multi-module designs for
the generalization experiment (Table 3).
"""

from __future__ import annotations

from ..problem import ProblemSet
from . import problems_arith, problems_comb, problems_fsm, problems_seq, problems_seq2


def verilogeval() -> ProblemSet:
    """The VerilogEval-style corpus: combinational + arithmetic +
    sequential + FSM problems."""
    problem_set = ProblemSet(name="verilogeval")
    for module in (
        problems_comb, problems_arith, problems_seq, problems_seq2, problems_fsm,
    ):
        for problem in module.PROBLEMS:
            problem_set.add(problem)
    return problem_set


__all__ = ["verilogeval"]
