"""Additional sequential problems (corpus extension)."""

from __future__ import annotations

from ..problem import Problem


def _p(**kwargs) -> Problem:
    return Problem(**kwargs)


PROBLEMS: list[Problem] = [
    _p(
        id="dff16_en2",
        human_desc=(
            "Create a 16-bit register with two byte-enables: byteena[1] gates "
            "the upper byte, byteena[0] the lower byte. Synchronous reset."
        ),
        machine_desc=(
            "On posedge clk: if reset, q <= 0; else update q[15:8] when "
            "byteena[1] and q[7:0] when byteena[0]."
        ),
        header=(
            "module top_module (\n  input clk,\n  input reset,\n"
            "  input [1:0] byteena,\n  input [15:0] d,\n  output reg [15:0] q\n);"
        ),
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n"
            "  input [1:0] byteena,\n  input [15:0] d,\n  output reg [15:0] q\n);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) q <= 16'd0;\n"
            "  else begin\n"
            "    if (byteena[1]) q[15:8] <= d[15:8];\n"
            "    if (byteena[0]) q[7:0] <= d[7:0];\n"
            "  end\n"
            "end\nendmodule\n"
        ),
        kind="seq", difficulty="easy", base_solve_rate=0.55,
    ),
    _p(
        id="ring_counter4",
        human_desc=(
            "Build a 4-bit ring counter: a single hot bit rotates one position "
            "per cycle; synchronous reset loads 4'b0001."
        ),
        machine_desc="On posedge clk: if reset, q <= 4'b0001; else q <= {q[2:0], q[3]}.",
        header="module top_module (\n  input clk,\n  input reset,\n  output reg [3:0] q\n);",
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  output reg [3:0] q\n);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) q <= 4'b0001;\n  else q <= {q[2:0], q[3]};\nend\nendmodule\n"
        ),
        kind="seq", difficulty="easy", base_solve_rate=0.6,
    ),
    _p(
        id="sat_counter2",
        human_desc=(
            "Build a 2-bit saturating up/down counter (a branch-predictor "
            "style bimodal counter): up increments toward 3, down decrements "
            "toward 0, never wrapping. Synchronous reset to 1 (weakly not-taken)."
        ),
        machine_desc=(
            "On posedge clk: reset -> 1; up && q != 3 -> q+1; "
            "!up && q != 0 -> q-1."
        ),
        header=(
            "module top_module (\n  input clk,\n  input reset,\n  input up,\n"
            "  output reg [1:0] q\n);"
        ),
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  input up,\n"
            "  output reg [1:0] q\n);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) q <= 2'd1;\n"
            "  else if (up && q != 2'd3) q <= q + 1;\n"
            "  else if (!up && q != 2'd0) q <= q - 1;\n"
            "end\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.22,
    ),
    _p(
        id="pulse_stretcher",
        human_desc=(
            "Stretch an input pulse to exactly 4 cycles: when in pulses high, "
            "the output stays high for the next 4 cycles (retriggerable). "
            "Synchronous reset."
        ),
        machine_desc=(
            "Keep a 3-bit down-counter. On posedge clk: reset clears; if in, "
            "count <= 4; else if count != 0, count <= count - 1. out = count != 0."
        ),
        header=(
            "module top_module (\n  input clk,\n  input reset,\n  input in,\n"
            "  output out\n);"
        ),
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  input in,\n"
            "  output out\n);\n"
            "reg [2:0] count;\n"
            "always @(posedge clk) begin\n"
            "  if (reset) count <= 3'd0;\n"
            "  else if (in) count <= 3'd4;\n"
            "  else if (count != 3'd0) count <= count - 1;\n"
            "end\n"
            "assign out = (count != 3'd0);\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.15,
    ),
    _p(
        id="debounce3",
        human_desc=(
            "Debounce a noisy input: the output only changes after the input "
            "has held the new value for 3 consecutive cycles. Synchronous reset."
        ),
        machine_desc=(
            "Track a 2-bit match counter. On posedge clk: if reset, clear out and "
            "counter; else if in == out, counter <= 0; else increment the counter "
            "and when it reaches 2, load out <= in and clear the counter."
        ),
        header=(
            "module top_module (\n  input clk,\n  input reset,\n  input in,\n"
            "  output reg out\n);"
        ),
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  input in,\n"
            "  output reg out\n);\n"
            "reg [1:0] count;\n"
            "always @(posedge clk) begin\n"
            "  if (reset) begin\n"
            "    out <= 1'b0;\n    count <= 2'd0;\n"
            "  end\n"
            "  else if (in == out) count <= 2'd0;\n"
            "  else if (count == 2'd2) begin\n"
            "    out <= in;\n    count <= 2'd0;\n"
            "  end\n"
            "  else count <= count + 1;\n"
            "end\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.1,
    ),
    _p(
        id="accumulate_u8",
        human_desc=(
            "Accumulate an 8-bit input stream into a 16-bit running sum with a "
            "valid strobe; synchronous clear."
        ),
        machine_desc="On posedge clk: if clear, sum <= 0; else if valid, sum <= sum + in.",
        header=(
            "module top_module (\n  input clk,\n  input clear,\n  input valid,\n"
            "  input [7:0] in,\n  output reg [15:0] sum\n);"
        ),
        reference=(
            "module top_module (\n  input clk,\n  input clear,\n  input valid,\n"
            "  input [7:0] in,\n  output reg [15:0] sum\n);\n"
            "always @(posedge clk) begin\n"
            "  if (clear) sum <= 16'd0;\n"
            "  else if (valid) sum <= sum + in;\n"
            "end\nendmodule\n"
        ),
        kind="seq", difficulty="easy", base_solve_rate=0.62,
    ),
    _p(
        id="min_tracker",
        human_desc=(
            "Track the minimum value seen on an 8-bit input since the last "
            "synchronous reset (reset sets the minimum to 255)."
        ),
        machine_desc="On posedge clk: if reset, min <= 8'hFF; else if in < min, min <= in.",
        header=(
            "module top_module (\n  input clk,\n  input reset,\n"
            "  input [7:0] in,\n  output reg [7:0] min\n);"
        ),
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n"
            "  input [7:0] in,\n  output reg [7:0] min\n);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) min <= 8'hFF;\n"
            "  else if (in < min) min <= in;\n"
            "end\nendmodule\n"
        ),
        kind="seq", difficulty="easy", base_solve_rate=0.58,
    ),
    _p(
        id="alternating_detect",
        human_desc=(
            "Detect an alternating input: output 1 when the last three input "
            "bits form 010 or 101. Synchronous reset."
        ),
        machine_desc=(
            "Keep a 2-bit history {prev1, prev2}. out = (in != prev1) && "
            "(prev1 != prev2) computed combinationally from registered history; "
            "history shifts every posedge."
        ),
        header=(
            "module top_module (\n  input clk,\n  input reset,\n  input in,\n"
            "  output out\n);"
        ),
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  input in,\n"
            "  output out\n);\n"
            "reg prev1;\n"
            "reg prev2;\n"
            "always @(posedge clk) begin\n"
            "  if (reset) begin\n"
            "    prev1 <= 1'b0;\n    prev2 <= 1'b0;\n"
            "  end\n"
            "  else begin\n"
            "    prev2 <= prev1;\n    prev1 <= in;\n"
            "  end\n"
            "end\n"
            "assign out = (in != prev1) && (prev1 != prev2);\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.12,
    ),
    _p(
        id="fsm_vend",
        human_desc=(
            "A vending FSM: nickels (5) and dimes (10) accumulate toward 15 "
            "cents; dispense pulses when the total reaches or passes 15 and the "
            "count restarts from the overshoot discarded (back to zero). "
            "Synchronous reset."
        ),
        machine_desc=(
            "Keep total[3:0] counting in units of 5 (0,1,2). nickel adds 1, dime "
            "adds 2. When the new total >= 3, assert dispense (registered) and "
            "reset total to 0; else store the new total and clear dispense."
        ),
        header=(
            "module top_module (\n  input clk,\n  input reset,\n  input nickel,\n"
            "  input dime,\n  output reg dispense\n);"
        ),
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  input nickel,\n"
            "  input dime,\n  output reg dispense\n);\n"
            "reg [3:0] total;\n"
            "wire [3:0] added;\n"
            "assign added = total + {3'd0, nickel} + {2'd0, dime, 1'b0};\n"
            "always @(posedge clk) begin\n"
            "  if (reset) begin\n"
            "    total <= 4'd0;\n    dispense <= 1'b0;\n"
            "  end\n"
            "  else if (added >= 4'd3) begin\n"
            "    total <= 4'd0;\n    dispense <= 1'b1;\n"
            "  end\n"
            "  else begin\n"
            "    total <= added;\n    dispense <= 1'b0;\n"
            "  end\n"
            "end\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.07,
    ),
    _p(
        id="strobe_div2",
        human_desc="Output a strobe on every other rising clock edge (divide-by-2 enable).",
        machine_desc="Toggle a flip-flop each cycle; out is the flop value. Synchronous reset.",
        header="module top_module (\n  input clk,\n  input reset,\n  output reg out\n);",
        reference=(
            "module top_module (\n  input clk,\n  input reset,\n  output reg out\n);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) out <= 1'b0;\n  else out <= ~out;\nend\nendmodule\n"
        ),
        kind="seq", difficulty="easy", base_solve_rate=0.75,
    ),
]
