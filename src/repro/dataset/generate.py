"""Simulated LLM sampling of Verilog solutions.

The paper samples *gpt-3.5-turbo* n=20 times per VerilogEval problem; we
have no API in this environment, so :class:`GenerationModel` emulates
the *statistics* of that process with real artifacts: each sample is
actual Verilog derived from the problem's reference implementation --
kept correct, logic-mutated (compiles, wrong behaviour), or
syntax-broken via the category-labelled error injector.  Rates are
calibrated so that the corpus-level pass@1 and the ~55% syntax share of
failures match the paper's Table 2 / Fig. 4 numbers.

Samples are dressed the way chat LLMs actually answer (markdown fences,
a sentence of prose, occasional degenerate output) so the §3.4 curation
pipeline has real work to do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Literal

from ..diagnostics import ErrorCategory
from .inject import ErrorInjector
from .mutate import force_behavior_change, mutate_logic
from .problem import Problem

SampleKind = Literal["correct", "logic", "syntax", "degenerate"]

#: Per-(benchmark, difficulty) probability that a sample contains a
#: syntax error (Table 2 calibration; see module docstring).
SYNTAX_RATE = {
    ("human", "easy"): 0.26,
    ("human", "hard"): 0.52,
    ("machine", "easy"): 0.24,
    ("machine", "hard"): 0.35,
    # RTLLM prompts are full design specs; gpt-3.5's syntax success rate
    # on them is ~73% (Table 3), i.e. a lower error rate than
    # VerilogEval-hard.
    ("rtllm", "easy"): 0.18,
    ("rtllm", "hard"): 0.30,
}

#: Real LLM sampling is strongly (but not perfectly) bimodal per
#: problem: usually the model either "knows" the trick (most samples
#: right) or does not (almost none), with a band of partially-understood
#: problems in between.  A per-(problem, benchmark) latent draw decides
#: the regime; calibrated so pass@1 *and* pass@5 track Table 2.
P_CORRECT_UNSOLVED = 0.015
PARTIAL_BAND = 0.30  # latent-probability width of the partial regime


def logic_rate(problem: Problem, benchmark: str) -> float:
    """Probability that the model's latent skill covers this problem's
    logic (the 'solved' regime share)."""
    base = problem.base_solve_rate
    if benchmark == "machine":
        # Machine (low-level) descriptions nearly spell out the answer,
        # lifting weak problems the most -- as in VerilogEval-Machine.
        return _clip(0.23 + 0.96 * base)
    # "human" and "rtllm" both use high-level intent descriptions.
    return _clip(1.25 * base - 0.22)


def _clip(x: float, lo: float = 0.01, hi: float = 0.97) -> float:
    return max(lo, min(hi, x))


@dataclass(frozen=True)
class CodeSample:
    """One simulated LLM completion for a problem."""

    problem_id: str
    raw: str  # as the LLM would emit it (may include markdown/prose)
    kind: SampleKind
    seed: int
    injected_category: ErrorCategory | None = None


_PROSE_OPENERS = (
    "Sure! Here is the Verilog implementation:",
    "Here's a module that implements the requested behavior:",
    "The following Verilog code solves the problem:",
)


class GenerationModel:
    """Statistical stand-in for sampling an LLM at a fixed temperature."""

    def __init__(
        self,
        tier: str = "gpt-3.5-sim",
        temperature: float = 0.4,
        seed: int = 0,
    ):
        self.tier = tier
        self.temperature = temperature
        self.seed = seed
        #: Stronger models make fewer syntax errors (§4.3.2).
        self._syntax_scale = 0.25 if tier.startswith("gpt-4") else 1.0
        self._logic_bonus = 0.25 if tier.startswith("gpt-4") else 0.0

    # -- public API -----------------------------------------------------

    def sample(
        self, problem: Problem, benchmark: str = "human", index: int = 0
    ) -> CodeSample:
        """Draw one completion for ``problem``."""
        rng = random.Random(
            f"{self.seed}|{problem.id}|{benchmark}|{index}|{self.tier}"
        )
        kind = self._draw_kind(problem, benchmark, rng)
        injected: ErrorCategory | None = None

        if kind == "degenerate":
            body = self._degenerate(problem, rng)
        else:
            body = problem.reference
            if kind in ("logic", "syntax"):
                logic_ok = kind == "syntax" and rng.random() < self._p_correct(
                    problem, benchmark
                )
                if kind == "logic" or not logic_ok:
                    body = self._mutate_verified(problem, rng)
            if kind == "syntax":
                injector = ErrorInjector(seed=rng.getrandbits(32))
                n_errors = 1 if rng.random() < 0.8 else 2
                injection = injector.inject_random(body, n_errors=n_errors)
                body = injection.code
                injected = injection.category

        raw = self._dress(body, rng)
        return CodeSample(
            problem_id=problem.id, raw=raw, kind=kind, seed=index,
            injected_category=injected,
        )

    def _p_correct(self, problem: Problem, benchmark: str) -> float:
        """Per-sample logic-correctness rate in this problem's regime."""
        key = f"solved|{self.seed}|{problem.id}|{benchmark}|{self.tier}"
        latent = random.Random(key)
        u = latent.random()
        v = latent.random()
        share = logic_rate(problem, benchmark) + self._logic_bonus
        if u < share:
            return 0.70 + 0.30 * v  # solved regime
        if u < share + PARTIAL_BAND:
            return 0.05 + 0.40 * v  # partially understood
        return P_CORRECT_UNSOLVED

    def _mutate_verified(self, problem: Problem, rng: random.Random) -> str:
        """A logic mutation verified to actually change behaviour
        (random operator swaps are sometimes accidentally equivalent)."""
        from ..diagnostics import compile_source
        from ..runtime.cache import cached_compile
        from ..sim import run_differential

        reference = cached_compile(problem.reference).elaborated
        for _ in range(5):
            mutated = mutate_logic(problem.reference, rng)
            if mutated == problem.reference:
                continue
            elaborated = compile_source(mutated).elaborated
            if elaborated is None:
                continue
            diff = run_differential(elaborated, reference, samples=12, seed=7)
            if not diff.passed:
                return mutated
        forced = force_behavior_change(problem.reference)
        return forced if forced is not None else mutate_logic(problem.reference, rng)

    def sample_n(
        self, problem: Problem, n: int, benchmark: str = "human"
    ) -> list[CodeSample]:
        """Draw ``n`` completions for a problem."""
        return [self.sample(problem, benchmark, index=i) for i in range(n)]

    # -- internals --------------------------------------------------------

    def _draw_kind(
        self, problem: Problem, benchmark: str, rng: random.Random
    ) -> SampleKind:
        p_degenerate = 0.02
        p_syntax = (
            SYNTAX_RATE[(benchmark, problem.difficulty)] * self._syntax_scale
        )
        # Temperature widens the error tail a little around the paper's 0.4.
        p_syntax = min(0.95, p_syntax * (0.6 + self.temperature))

        roll = rng.random()
        if roll < p_degenerate:
            return "degenerate"
        if roll < p_degenerate + p_syntax:
            return "syntax"
        return (
            "correct"
            if rng.random() < self._p_correct(problem, benchmark)
            else "logic"
        )

    def _degenerate(self, problem: Problem, rng: random.Random) -> str:
        if rng.random() < 0.5:
            # Empty module body.
            return problem.header + "\n\nendmodule\n"
        # Pure prose, no code at all.
        return (
            "I'm sorry, implementing this module requires more information "
            "about the timing requirements."
        )

    def _dress(self, body: str, rng: random.Random) -> str:
        """Wrap the code the way a chat model would."""
        style = rng.random()
        if style < 0.35:
            opener = rng.choice(_PROSE_OPENERS)
            return f"{opener}\n\n```verilog\n{body}```\n"
        if style < 0.5:
            return f"```\n{body}```"
        if style < 0.6:
            # A stray `timescale before the module, the paper's rule-fixer
            # target.
            return f"`timescale 1ns/1ps\n{body}"
        return body
