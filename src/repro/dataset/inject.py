"""Syntax-error injection.

The paper's VerilogEval-syntax dataset consists of *naturally occurring*
LLM mistakes.  Our simulated generator reproduces those mistakes by
injecting them into (possibly logic-mutated) reference code: every
transform here corresponds to one error category from the taxonomy in
:mod:`repro.diagnostics.codes`, and produces the kind of source change
an LLM actually makes (dropping a clock from the port list, off-by-one
loop bounds, forgetting ``reg``, C-style ``i++``, ...).

Transforms are plain text edits (the corpus has a fixed formatting
convention, making them reliable); each is validated by the caller via
:func:`verify_injection`, which checks the result really fails to
compile.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..diagnostics import ErrorCategory, compile_source
from ..errors import DatasetError

Transform = Callable[[str, random.Random], Optional[str]]


@dataclass(frozen=True)
class Injection:
    """A successfully injected error."""

    code: str
    category: ErrorCategory
    transform: str
    #: Categories the compiler actually reports for the injected code.
    observed: tuple[ErrorCategory, ...] = field(default=())


# ---------------------------------------------------------------------------
# Individual transforms.  Each returns the modified source, or None when
# the pattern it needs is not present.
# ---------------------------------------------------------------------------


def drop_clk_port(code: str, rng: random.Random) -> Optional[str]:
    """Remove ``input clk`` from the port list (the Fig. 5 bug)."""
    new = re.sub(r"\n\s*input\s+clk\s*,", "", code, count=1)
    if new == code or "posedge clk" not in code:
        return None
    return new


def misspell_signal_use(code: str, rng: random.Random) -> Optional[str]:
    """Misspell one *use* of a declared internal signal."""
    decls = re.findall(r"\b(?:reg|wire)\s*(?:\[[^\]]+\]\s*)?(\w+)\s*;", code)
    rng.shuffle(decls)
    for name in decls:
        uses = [m for m in re.finditer(rf"\b{re.escape(name)}\b", code)]
        if len(uses) < 2:
            continue
        target = uses[-1]
        wrong = name + "_sig"
        return code[: target.start()] + wrong + code[target.end() :]
    return None


def constant_index_overflow(code: str, rng: random.Random) -> Optional[str]:
    """Bump a constant bit-select past the declared MSB (Fig. 2a bug)."""
    decls = {
        m.group(2): int(m.group(1))
        for m in re.finditer(r"\[(\d+):0\]\s*(\w+)", code)
    }
    sites = [
        m
        for m in re.finditer(r"\b(\w+)\[(\d+)\]", code)
        if m.group(1) in decls and int(m.group(2)) <= decls[m.group(1)]
    ]
    if not sites:
        return None
    site = rng.choice(sites)
    msb = decls[site.group(1)]
    return (
        code[: site.start()]
        + f"{site.group(1)}[{msb + 1}]"
        + code[site.end() :]
    )


def loop_bound_off_by_one(code: str, rng: random.Random) -> Optional[str]:
    """Turn ``i < N`` into ``i <= N`` in a for loop: the last iteration
    indexes one past the end (the Fig. 6 family)."""
    match = re.search(r"for\s*\(([^;]+);\s*(\w+)\s*<\s*(\d+)\s*;", code)
    if match is None:
        return None
    return (
        code[: match.start()]
        + f"for ({match.group(1)}; {match.group(2)} <= {match.group(3)};"
        + code[match.end() :]
    )


def drop_output_reg(code: str, rng: random.Random) -> Optional[str]:
    """``output reg x`` -> ``output x`` while x is still assigned in an
    always block: the classic invalid l-value."""
    match = re.search(r"output\s+reg\s+(\[[^\]]+\]\s*)?(\w+)", code)
    if match is None or "always" not in code:
        return None
    name = match.group(2)
    if not re.search(rf"\b{re.escape(name)}\b[^;=]*<?=", code[match.end():]):
        return None
    rng_part = match.group(1) or ""
    return code[: match.start()] + f"output {rng_part}{name}" + code[match.end() :]


def assign_to_input(code: str, rng: random.Random) -> Optional[str]:
    """Add a continuous assignment driving an input port."""
    inputs = re.findall(r"input\s+(?:\[[^\]]+\]\s*)?(\w+)", code)
    inputs = [i for i in inputs if i not in ("clk", "clock")]
    if not inputs:
        return None
    name = rng.choice(inputs)
    return code.replace("endmodule", f"assign {name} = 0;\nendmodule", 1)


def remove_semicolon(code: str, rng: random.Random) -> Optional[str]:
    """Delete the trailing semicolon of one statement line."""
    lines = code.split("\n")
    candidates = [
        i
        for i, line in enumerate(lines)
        if line.rstrip().endswith(";")
        and ("=" in line or "assign" in line)
        and "for" not in line
    ]
    if not candidates:
        return None
    idx = rng.choice(candidates)
    lines[idx] = lines[idx].rstrip()[:-1]
    return "\n".join(lines)


def remove_end(code: str, rng: random.Random) -> Optional[str]:
    """Delete one bare ``end`` line, unbalancing a block."""
    lines = code.split("\n")
    candidates = [i for i, line in enumerate(lines) if line.strip() == "end"]
    if not candidates:
        return None
    del lines[rng.choice(candidates)]
    return "\n".join(lines)


def corrupt_literal(code: str, rng: random.Random) -> Optional[str]:
    """Replace a literal digit with one illegal for its base."""
    sites = list(re.finditer(r"(\d+)'([bdh])([0-9a-fA-F]+)", code))
    if not sites:
        return None
    site = rng.choice(sites)
    base = site.group(2)
    digits = site.group(3)
    bad_digit = {"b": "2", "d": "a", "h": "g"}[base]
    corrupted = digits[:-1] + bad_digit if len(digits) > 1 else bad_digit
    return (
        code[: site.start()]
        + f"{site.group(1)}'{base}{corrupted}"
        + code[site.end() :]
    )


def rename_instance_port(code: str, rng: random.Random) -> Optional[str]:
    """Rename one named port connection to a non-port."""
    sites = list(re.finditer(r"\.(\w+)\(", code))
    if not sites:
        return None
    site = rng.choice(sites)
    return code[: site.start()] + f".{site.group(1)}_p(" + code[site.end() :]


def duplicate_declaration(code: str, rng: random.Random) -> Optional[str]:
    """Duplicate one net/reg/integer declaration line."""
    lines = code.split("\n")
    candidates = [
        i
        for i, line in enumerate(lines)
        if re.match(r"\s*(reg|wire|integer)\b[^=]*;\s*$", line)
    ]
    if not candidates:
        return None
    idx = rng.choice(candidates)
    lines.insert(idx + 1, lines[idx])
    return "\n".join(lines)


def c_style_increment(code: str, rng: random.Random) -> Optional[str]:
    """Turn a for-loop step ``i = i + 1`` into C-style ``i++``."""
    match = re.search(r"(\w+)\s*=\s*\1\s*\+\s*1\s*\)", code)
    if match is None:
        return None
    return code[: match.start()] + f"{match.group(1)}++)" + code[match.end() :]


def c_style_compound(code: str, rng: random.Random) -> Optional[str]:
    """Turn ``x = x + k;`` into the C-style ``x += k;``."""
    match = re.search(r"(\w+)\s*=\s*\1\s*\+\s*([\w\[\]']+);", code)
    if match is None:
        return None
    return (
        code[: match.start()]
        + f"{match.group(1)} += {match.group(2)};"
        + code[match.end() :]
    )


def break_event_control(code: str, rng: random.Random) -> Optional[str]:
    """Damage a sensitivity list (``@(posedge)``, ``@()`` or none)."""
    if "@(posedge clk)" in code and rng.random() < 0.5:
        return code.replace("@(posedge clk)", "@(posedge)", 1)
    if "@(*)" in code:
        return code.replace("@(*)", "@()", 1)
    if "@(posedge clk)" in code:
        return code.replace("@(posedge clk)", "", 1)
    return None


def misspell_assign(code: str, rng: random.Random) -> Optional[str]:
    """Misspell the ``assign`` keyword (``asign``)."""
    if "assign " not in code:
        return None
    return code.replace("assign ", "asign ", 1)


def double_equals_assign(code: str, rng: random.Random) -> Optional[str]:
    """Turn a continuous assignment's ``=`` into ``==``."""
    match = re.search(r"assign\s+(\w+(?:\[[^\]]*\])?)\s*=", code)
    if match is None:
        return None
    return code[: match.end()] + "=" + code[match.end() :]


#: Category -> applicable transforms, tried in order of preference.
TRANSFORMS: dict[ErrorCategory, list[Transform]] = {
    ErrorCategory.UNDECLARED_ID: [drop_clk_port, misspell_signal_use],
    ErrorCategory.INDEX_RANGE: [constant_index_overflow, loop_bound_off_by_one],
    ErrorCategory.INVALID_LVALUE: [drop_output_reg, assign_to_input],
    ErrorCategory.MISSING_SEMICOLON: [remove_semicolon],
    ErrorCategory.UNBALANCED_BLOCK: [remove_end],
    ErrorCategory.BAD_LITERAL: [corrupt_literal],
    ErrorCategory.PORT_MISMATCH: [rename_instance_port],
    ErrorCategory.DUPLICATE_DECL: [duplicate_declaration],
    ErrorCategory.C_STYLE_SYNTAX: [c_style_increment, c_style_compound],
    ErrorCategory.EVENT_EXPR: [break_event_control],
    ErrorCategory.SYNTAX_NEAR: [misspell_assign, double_equals_assign],
}

_TRANSFORM_NAMES: dict[Transform, str] = {
    fn: fn.__name__ for fns in TRANSFORMS.values() for fn in fns
}


def verify_injection(code: str) -> tuple[ErrorCategory, ...]:
    """Compile the injected code and return the observed categories;
    empty tuple means the injection failed to break the code."""
    result = compile_source(code)
    if result.ok:
        return ()
    return tuple(result.categories)


class ErrorInjector:
    """Injects category-labelled syntax errors into working Verilog."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    def applicable_categories(self, code: str) -> list[ErrorCategory]:
        """Categories with at least one transform applicable to ``code``."""
        out = []
        for category, transforms in TRANSFORMS.items():
            for transform in transforms:
                if transform(code, random.Random(0)) is not None:
                    out.append(category)
                    break
        return out

    def inject(
        self, code: str, category: ErrorCategory, validate: bool = True
    ) -> Optional[Injection]:
        """Inject one error of ``category``; None if no transform applies
        (or validation shows the code still compiles)."""
        transforms = list(TRANSFORMS.get(category, []))
        self.rng.shuffle(transforms)
        for transform in transforms:
            mutated = transform(code, self.rng)
            if mutated is None or mutated == code:
                continue
            observed: tuple[ErrorCategory, ...] = ()
            if validate:
                observed = verify_injection(mutated)
                if not observed:
                    continue
            return Injection(
                code=mutated,
                category=category,
                transform=_TRANSFORM_NAMES[transform],
                observed=observed,
            )
        return None

    def inject_random(
        self, code: str, n_errors: int = 1, validate: bool = True
    ) -> Injection:
        """Inject ``n_errors`` errors of randomly chosen categories.

        Raises DatasetError when nothing applies (should not happen for
        corpus references).
        """
        categories = list(TRANSFORMS)
        current = code
        applied: list[Injection] = []
        for _ in range(n_errors):
            self.rng.shuffle(categories)
            for category in categories:
                injection = self.inject(current, category, validate=False)
                if injection is not None:
                    current = injection.code
                    applied.append(injection)
                    break
        if not applied:
            raise DatasetError("no error-injection transform applies to this code")
        observed = verify_injection(current) if validate else ()
        if validate and not observed:
            # Extremely unlikely; fall back to a guaranteed breaker.
            current = misspell_assign(current, self.rng) or current + "\n@@"
            observed = verify_injection(current)
        return Injection(
            code=current,
            category=applied[0].category,
            transform="+".join(i.transform for i in applied),
            observed=observed,
        )
