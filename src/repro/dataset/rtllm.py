"""RTLLM-style corpus: larger designs, several with module hierarchy.

The paper uses the RTLLM benchmark (Lu et al. 2023) to show that
RTLFixer generalizes beyond VerilogEval without any new RAG entries
(Table 3).  RTLLM problems are bigger "design" tasks (ALUs, FIFOs,
multipliers...) rather than puzzle-sized exercises; we mirror that by
making these problems multi-always, multi-signal and sometimes
multi-module, which also exercises the PORT_MISMATCH error category.
"""

from __future__ import annotations

from .problem import Problem, ProblemSet


def _p(**kwargs) -> Problem:
    return Problem(**kwargs)


PROBLEMS: list[Problem] = [
    _p(
        id="rtllm_alu8",
        human_desc=(
            "Design an 8-bit ALU supporting ADD, SUB, AND, OR, XOR, shift-left, "
            "shift-right and pass-through, selected by a 3-bit opcode; also output a "
            "zero flag."
        ),
        machine_desc=(
            "Case on op: 0 add, 1 subtract, 2 and, 3 or, 4 xor, 5 a<<1, 6 a>>1, "
            "default a. zero = (result == 0)."
        ),
        header=(
            "module alu8 (\n  input [7:0] a,\n  input [7:0] b,\n  input [2:0] op,\n"
            "  output reg [7:0] result,\n  output zero\n);"
        ),
        reference=(
            "module alu8 (\n  input [7:0] a,\n  input [7:0] b,\n  input [2:0] op,\n"
            "  output reg [7:0] result,\n  output zero\n);\n"
            "always @(*) begin\n"
            "  case (op)\n"
            "    3'd0: result = a + b;\n"
            "    3'd1: result = a - b;\n"
            "    3'd2: result = a & b;\n"
            "    3'd3: result = a | b;\n"
            "    3'd4: result = a ^ b;\n"
            "    3'd5: result = a << 1;\n"
            "    3'd6: result = a >> 1;\n"
            "    default: result = a;\n"
            "  endcase\n"
            "end\n"
            "assign zero = (result == 8'd0);\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.5,
    ),
    _p(
        id="rtllm_adder16_hier",
        human_desc=(
            "Design a 16-bit ripple adder built from two 8-bit adder submodules "
            "chained through the carry."
        ),
        machine_desc=(
            "Instantiate adder8 twice: low half adds a[7:0]+b[7:0] with cin, high "
            "half adds a[15:8]+b[15:8] with the low carry; cout is the high carry."
        ),
        header=(
            "module adder16 (\n  input [15:0] a,\n  input [15:0] b,\n  input cin,\n"
            "  output [15:0] sum,\n  output cout\n);"
        ),
        reference=(
            "module adder16 (\n  input [15:0] a,\n  input [15:0] b,\n  input cin,\n"
            "  output [15:0] sum,\n  output cout\n);\n"
            "wire carry_mid;\n"
            "adder8 lo (.a(a[7:0]), .b(b[7:0]), .cin(cin), .sum(sum[7:0]), .cout(carry_mid));\n"
            "adder8 hi (.a(a[15:8]), .b(b[15:8]), .cin(carry_mid), .sum(sum[15:8]), .cout(cout));\n"
            "endmodule\n"
            "module adder8 (\n  input [7:0] a,\n  input [7:0] b,\n  input cin,\n"
            "  output [7:0] sum,\n  output cout\n);\n"
            "assign {cout, sum} = a + b + cin;\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.3,
    ),
    _p(
        id="rtllm_mult8_shiftadd",
        human_desc=(
            "Design a combinational 8x8 multiplier producing a 16-bit product using "
            "the shift-and-add scheme."
        ),
        machine_desc=(
            "In a combinational for loop over i in 0..7, add (a << i) to the product "
            "whenever b[i] is set."
        ),
        header=(
            "module mult8 (\n  input [7:0] a,\n  input [7:0] b,\n"
            "  output reg [15:0] product\n);"
        ),
        reference=(
            "module mult8 (\n  input [7:0] a,\n  input [7:0] b,\n"
            "  output reg [15:0] product\n);\n"
            "integer i;\n"
            "always @(*) begin\n"
            "  product = 16'd0;\n"
            "  for (i = 0; i < 8; i = i + 1) begin\n"
            "    if (b[i]) product = product + ({8'd0, a} << i);\n"
            "  end\n"
            "end\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.2,
    ),
    _p(
        id="rtllm_regfile4",
        human_desc=(
            "Design a 4-entry, 8-bit register file with one write port and two "
            "combinational read ports. Register 0 is hardwired to zero."
        ),
        machine_desc=(
            "reg [7:0] regs [0:3]. On posedge clk, if we and waddr != 0, "
            "regs[waddr] <= wdata. rdata1 = raddr1 == 0 ? 0 : regs[raddr1]; same for "
            "rdata2."
        ),
        header=(
            "module regfile4 (\n  input clk,\n  input we,\n  input [1:0] waddr,\n"
            "  input [7:0] wdata,\n  input [1:0] raddr1,\n  input [1:0] raddr2,\n"
            "  output [7:0] rdata1,\n  output [7:0] rdata2\n);"
        ),
        reference=(
            "module regfile4 (\n  input clk,\n  input we,\n  input [1:0] waddr,\n"
            "  input [7:0] wdata,\n  input [1:0] raddr1,\n  input [1:0] raddr2,\n"
            "  output [7:0] rdata1,\n  output [7:0] rdata2\n);\n"
            "reg [7:0] regs [0:3];\n"
            "always @(posedge clk) begin\n"
            "  if (we && waddr != 2'd0) regs[waddr] <= wdata;\n"
            "end\n"
            "assign rdata1 = (raddr1 == 2'd0) ? 8'd0 : regs[raddr1];\n"
            "assign rdata2 = (raddr2 == 2'd0) ? 8'd0 : regs[raddr2];\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.15,
    ),
    _p(
        id="rtllm_fifo_depth4",
        human_desc=(
            "Design a 4-deep, 8-bit synchronous FIFO with write/read strobes and "
            "full/empty flags; synchronous reset."
        ),
        machine_desc=(
            "Use a 4-entry memory, 2-bit read/write pointers and a 3-bit count. On "
            "posedge clk: reset clears pointers and count; a write (when not full) "
            "stores data and bumps wptr; a read (when not empty) bumps rptr; count "
            "adjusts accordingly. full = count == 4, empty = count == 0, dout is the "
            "word at rptr."
        ),
        header=(
            "module fifo4 (\n  input clk,\n  input reset,\n  input wr,\n"
            "  input [7:0] din,\n  input rd,\n  output [7:0] dout,\n"
            "  output full,\n  output empty\n);"
        ),
        reference=(
            "module fifo4 (\n  input clk,\n  input reset,\n  input wr,\n"
            "  input [7:0] din,\n  input rd,\n  output [7:0] dout,\n"
            "  output full,\n  output empty\n);\n"
            "reg [7:0] mem [0:3];\n"
            "reg [1:0] wptr;\n"
            "reg [1:0] rptr;\n"
            "reg [2:0] count;\n"
            "wire do_write;\n"
            "wire do_read;\n"
            "assign do_write = wr && !full;\n"
            "assign do_read = rd && !empty;\n"
            "always @(posedge clk) begin\n"
            "  if (reset) begin\n"
            "    wptr <= 2'd0;\n    rptr <= 2'd0;\n    count <= 3'd0;\n"
            "  end\n"
            "  else begin\n"
            "    if (do_write) begin\n"
            "      mem[wptr] <= din;\n      wptr <= wptr + 1;\n"
            "    end\n"
            "    if (do_read) rptr <= rptr + 1;\n"
            "    count <= count + do_write - do_read;\n"
            "  end\n"
            "end\n"
            "assign dout = mem[rptr];\n"
            "assign full = (count == 3'd4);\n"
            "assign empty = (count == 3'd0);\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.08,
    ),
    _p(
        id="rtllm_pwm",
        human_desc=(
            "Design an 8-bit PWM generator: a free-running counter compares against a "
            "duty-cycle input; the output is high while the counter is below the duty "
            "value. Synchronous reset."
        ),
        machine_desc=(
            "On posedge clk: if reset, counter <= 0, else counter <= counter + 1. "
            "Assign pwm = (counter < duty)."
        ),
        header=(
            "module pwm8 (\n  input clk,\n  input reset,\n  input [7:0] duty,\n"
            "  output pwm\n);"
        ),
        reference=(
            "module pwm8 (\n  input clk,\n  input reset,\n  input [7:0] duty,\n"
            "  output pwm\n);\n"
            "reg [7:0] counter;\n"
            "always @(posedge clk) begin\n"
            "  if (reset) counter <= 8'd0;\n  else counter <= counter + 1;\n"
            "end\n"
            "assign pwm = (counter < duty);\nendmodule\n"
        ),
        kind="seq", difficulty="easy", base_solve_rate=0.45,
    ),
    _p(
        id="rtllm_freq_div3",
        human_desc=(
            "Design a divide-by-3 clock enable generator: the output pulses one cycle "
            "out of every three. Synchronous reset."
        ),
        machine_desc=(
            "Keep a 2-bit counter cycling 0,1,2. On posedge clk: reset or counter==2 "
            "clears it, else it increments. tick = (counter == 2)."
        ),
        header="module freqdiv3 (\n  input clk,\n  input reset,\n  output tick\n);",
        reference=(
            "module freqdiv3 (\n  input clk,\n  input reset,\n  output tick\n);\n"
            "reg [1:0] counter;\n"
            "always @(posedge clk) begin\n"
            "  if (reset) counter <= 2'd0;\n"
            "  else if (counter == 2'd2) counter <= 2'd0;\n"
            "  else counter <= counter + 1;\n"
            "end\n"
            "assign tick = (counter == 2'd2);\nendmodule\n"
        ),
        kind="seq", difficulty="easy", base_solve_rate=0.4,
    ),
    _p(
        id="rtllm_arbiter2",
        human_desc=(
            "Design a round-robin arbiter for two requesters: grants alternate when "
            "both request; a single requester is granted immediately. Synchronous "
            "reset; grants are one-hot."
        ),
        machine_desc=(
            "Keep last_grant (1 bit). Combinationally: if both req bits set, grant "
            "the one opposite to last_grant; else grant = req. On posedge clk: if a "
            "grant was issued, last_grant <= which one (bit index)."
        ),
        header=(
            "module arbiter2 (\n  input clk,\n  input reset,\n  input [1:0] req,\n"
            "  output reg [1:0] grant\n);"
        ),
        reference=(
            "module arbiter2 (\n  input clk,\n  input reset,\n  input [1:0] req,\n"
            "  output reg [1:0] grant\n);\n"
            "reg last_grant;\n"
            "always @(*) begin\n"
            "  if (req == 2'b11) grant = last_grant ? 2'b01 : 2'b10;\n"
            "  else grant = req;\n"
            "end\n"
            "always @(posedge clk) begin\n"
            "  if (reset) last_grant <= 1'b0;\n"
            "  else if (grant == 2'b01) last_grant <= 1'b0;\n"
            "  else if (grant == 2'b10) last_grant <= 1'b1;\n"
            "end\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.1,
    ),
    _p(
        id="rtllm_serializer",
        human_desc=(
            "Design an 8-to-1 serializer: a load pulse captures a byte, then the bits "
            "shift out MSB-first one per cycle; busy is high while shifting."
        ),
        machine_desc=(
            "Registers: shift[7:0], remaining[3:0]. On posedge clk: reset clears "
            "both; load sets shift=data, remaining=8; else when remaining != 0, shift "
            "left by one and decrement remaining. out = shift[7], busy = remaining != 0."
        ),
        header=(
            "module serializer8 (\n  input clk,\n  input reset,\n  input load,\n"
            "  input [7:0] data,\n  output out,\n  output busy\n);"
        ),
        reference=(
            "module serializer8 (\n  input clk,\n  input reset,\n  input load,\n"
            "  input [7:0] data,\n  output out,\n  output busy\n);\n"
            "reg [7:0] shift;\n"
            "reg [3:0] remaining;\n"
            "always @(posedge clk) begin\n"
            "  if (reset) begin\n"
            "    shift <= 8'd0;\n    remaining <= 4'd0;\n"
            "  end\n"
            "  else if (load) begin\n"
            "    shift <= data;\n    remaining <= 4'd8;\n"
            "  end\n"
            "  else if (remaining != 4'd0) begin\n"
            "    shift <= {shift[6:0], 1'b0};\n    remaining <= remaining - 1;\n"
            "  end\n"
            "end\n"
            "assign out = shift[7];\n"
            "assign busy = (remaining != 4'd0);\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.1,
    ),
    _p(
        id="rtllm_gray_hier",
        human_desc=(
            "Design a 4-bit Gray-code counter as two modules: a binary counter "
            "submodule and a binary-to-Gray converter submodule wired together."
        ),
        machine_desc=(
            "Module bin_counter4: posedge clk, sync reset, q <= q + 1. Module "
            "bin2gray4: gray = bin ^ (bin >> 1). Top instantiates both."
        ),
        header="module gray_counter4 (\n  input clk,\n  input reset,\n  output [3:0] gray\n);",
        reference=(
            "module gray_counter4 (\n  input clk,\n  input reset,\n  output [3:0] gray\n);\n"
            "wire [3:0] bin;\n"
            "bin_counter4 counter (.clk(clk), .reset(reset), .q(bin));\n"
            "bin2gray4 converter (.bin(bin), .gray(gray));\n"
            "endmodule\n"
            "module bin_counter4 (\n  input clk,\n  input reset,\n  output reg [3:0] q\n);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) q <= 4'd0;\n  else q <= q + 1;\nend\nendmodule\n"
            "module bin2gray4 (\n  input [3:0] bin,\n  output [3:0] gray\n);\n"
            "assign gray = bin ^ (bin >> 1);\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.12,
    ),
    _p(
        id="rtllm_edge_counter",
        human_desc=(
            "Design a module that counts rising edges of a data signal, with an "
            "8-bit saturating count and synchronous clear."
        ),
        machine_desc=(
            "Register prev delays sig by one cycle. On posedge clk: clear sets count "
            "to 0; else if sig & ~prev and count != 255, count <= count + 1. prev "
            "always updates."
        ),
        header=(
            "module edge_counter (\n  input clk,\n  input clear,\n  input sig,\n"
            "  output reg [7:0] count\n);"
        ),
        reference=(
            "module edge_counter (\n  input clk,\n  input clear,\n  input sig,\n"
            "  output reg [7:0] count\n);\n"
            "reg prev;\n"
            "always @(posedge clk) begin\n"
            "  if (clear) count <= 8'd0;\n"
            "  else if (sig && !prev && count != 8'hFF) count <= count + 1;\n"
            "  prev <= sig;\n"
            "end\nendmodule\n"
        ),
        kind="seq", difficulty="hard", base_solve_rate=0.18,
    ),
    _p(
        id="rtllm_onehot_mux_param",
        human_desc=(
            "Design a parameterized one-hot mux module and instantiate it at "
            "widths 8 and 4: each instance ANDs its input with a one-hot select "
            "mask and ORs the surviving bit onto a single output."
        ),
        machine_desc=(
            "Module hotbit #(parameter W) computes out = |(in & mask). The top "
            "instantiates hotbit #(.W(8)) on a/mask_a and hotbit #(.W(4)) on "
            "b/mask_b."
        ),
        header=(
            "module onehot_top (\n  input [7:0] a,\n  input [7:0] mask_a,\n"
            "  input [3:0] b,\n  input [3:0] mask_b,\n  output bit_a,\n"
            "  output bit_b\n);"
        ),
        reference=(
            "module onehot_top (\n  input [7:0] a,\n  input [7:0] mask_a,\n"
            "  input [3:0] b,\n  input [3:0] mask_b,\n  output bit_a,\n"
            "  output bit_b\n);\n"
            "hotbit #(.W(8)) ha (.in(a), .mask(mask_a), .out(bit_a));\n"
            "hotbit #(.W(4)) hb (.in(b), .mask(mask_b), .out(bit_b));\n"
            "endmodule\n"
            "module hotbit #(parameter W = 2)(\n  input [W-1:0] in,\n"
            "  input [W-1:0] mask,\n  output out\n);\n"
            "assign out = |(in & mask);\nendmodule\n"
        ),
        kind="comb", difficulty="hard", base_solve_rate=0.15,
    ),
    _p(
        id="rtllm_clamp_s8",
        human_desc=(
            "Design a signed clamp: limit a signed 8-bit input into the range "
            "[lo, hi] given two signed bounds."
        ),
        machine_desc=(
            "Using signed comparisons: out = in < lo ? lo : (in > hi ? hi : in)."
        ),
        header=(
            "module clamp_s8 (\n  input signed [7:0] in,\n  input signed [7:0] lo,\n"
            "  input signed [7:0] hi,\n  output signed [7:0] out\n);"
        ),
        reference=(
            "module clamp_s8 (\n  input signed [7:0] in,\n  input signed [7:0] lo,\n"
            "  input signed [7:0] hi,\n  output signed [7:0] out\n);\n"
            "assign out = (in < lo) ? lo : ((in > hi) ? hi : in);\nendmodule\n"
        ),
        kind="comb", difficulty="easy", base_solve_rate=0.4,
    ),
]


def rtllm() -> ProblemSet:
    """The RTLLM-style problem set used in the Table 3 experiment."""
    problem_set = ProblemSet(name="rtllm")
    for problem in PROBLEMS:
        problem_set.add(problem)
    return problem_set
