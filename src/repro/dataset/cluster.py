"""DBSCAN clustering over Jaccard distance (§3.4 of the paper).

The dataset curation groups similar erroneous implementations with
DBSCAN using Jaccard distance on token shingles, then keeps one
representative per cluster so the final dataset covers *diverse* syntax
errors instead of 50 copies of the same slip.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass

_TOKEN_RE = re.compile(r"[A-Za-z_]\w*|\d+|[^\sA-Za-z0-9_]")


def tokenize_for_similarity(code: str) -> list[str]:
    """Lightweight tokenization used only for similarity (not parsing)."""
    return _TOKEN_RE.findall(code)


def shingles(code: str, k: int = 3) -> frozenset[tuple[str, ...]]:
    """k-token shingle set of a piece of code."""
    tokens = tokenize_for_similarity(code)
    if len(tokens) < k:
        return frozenset([tuple(tokens)]) if tokens else frozenset()
    return frozenset(tuple(tokens[i : i + k]) for i in range(len(tokens) - k + 1))


def jaccard_distance(a: frozenset, b: frozenset) -> float:
    """1 - |a ∩ b| / |a ∪ b|; distance 0 for two empty sets."""
    if not a and not b:
        return 0.0
    union = len(a | b)
    if union == 0:
        return 0.0
    return 1.0 - len(a & b) / union


@dataclass
class DBSCANResult:
    labels: list[int]  # cluster id per item; -1 = noise

    @property
    def n_clusters(self) -> int:
        return len({l for l in self.labels if l != -1})

    def members(self, label: int) -> list[int]:
        return [i for i, l in enumerate(self.labels) if l == label]

    def representatives(self) -> list[int]:
        """First member of each cluster plus every noise point, in
        first-appearance order."""
        seen: set[int] = set()
        reps: list[int] = []
        for i, label in enumerate(self.labels):
            if label == -1:
                reps.append(i)
            elif label not in seen:
                seen.add(label)
                reps.append(i)
        return reps


def dbscan(
    points: list[frozenset],
    eps: float = 0.3,
    min_samples: int = 2,
) -> DBSCANResult:
    """Classic DBSCAN over a precomputable Jaccard metric.

    O(n^2) distance evaluation -- fine for dataset-curation sizes
    (hundreds of samples per problem at most).
    """
    n = len(points)
    labels = [-2] * n  # -2 unvisited, -1 noise

    def neighbours(i: int) -> list[int]:
        return [
            j for j in range(n) if j != i and jaccard_distance(points[i], points[j]) <= eps
        ]

    cluster = 0
    for i in range(n):
        if labels[i] != -2:
            continue
        nbrs = neighbours(i)
        if len(nbrs) + 1 < min_samples:
            labels[i] = -1
            continue
        labels[i] = cluster
        queue = deque(nbrs)
        while queue:
            j = queue.popleft()
            if labels[j] == -1:
                labels[j] = cluster
            if labels[j] != -2:
                continue
            labels[j] = cluster
            j_nbrs = neighbours(j)
            if len(j_nbrs) + 1 >= min_samples:
                queue.extend(j_nbrs)
        cluster += 1
    return DBSCANResult(labels=labels)


def cluster_codes(
    codes: list[str], eps: float = 0.3, min_samples: int = 2, k: int = 3
) -> DBSCANResult:
    """Cluster source strings by Jaccard distance of token shingles."""
    return dbscan([shingles(c, k) for c in codes], eps=eps, min_samples=min_samples)
