"""Rule-based pre-fixer.

The paper's setup applies "a simple rule-based syntax fixer ... to every
LLM-generated verilog code, which avoids simple errors such as misplaced
timescale derivatives".  This module implements that pass:

* extract the Verilog from markdown code fences / surrounding prose;
* keep only the region from the first ``module`` to the last
  ``endmodule`` (dropping trailing chatter);
* hoist any ```` `timescale ```` directive that appears *inside* a
  module body back to the top of the file;
* strip non-ASCII junk that some models emit.

It never attempts real repairs -- that is the agent's job.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_FENCE_RE = re.compile(r"```(?:[a-zA-Z]*)\n(.*?)```", re.DOTALL)


@dataclass(frozen=True)
class RuleFixResult:
    code: str
    #: True when a module declaration was found at all.
    has_module: bool
    extracted_from_markdown: bool = False
    moved_timescale: bool = False


def extract_code(raw: str) -> tuple[str, bool]:
    """Pull Verilog out of a chat-style answer.

    Returns (code, was_markdown).  Prefers fenced blocks containing a
    ``module``; otherwise slices from the first ``module`` keyword to the
    last ``endmodule``.
    """
    fences = _FENCE_RE.findall(raw)
    for fence in fences:
        if "module" in fence:
            return fence, True
    # Require a declaration-shaped occurrence so prose like "the module
    # below..." is not mistaken for code.
    match = re.search(r"\bmodule\s+\w+\s*(?:\(|;|#)", raw)
    if match is None:
        match = re.search(r"\bmodule\b", raw)
    if match is None:
        return raw, False
    # Keep compiler directives (`timescale, `define...) that precede the
    # module declaration.
    directives = [
        line
        for line in raw[: match.start()].split("\n")
        if line.lstrip().startswith("`")
    ]
    prefix = "".join(d + "\n" for d in directives)
    end = raw.rfind("endmodule")
    if end == -1:
        return prefix + raw[match.start() :], False
    return prefix + raw[match.start() : end + len("endmodule")], False


def hoist_timescale(code: str) -> tuple[str, bool]:
    """Move a `timescale that appears after the first ``module`` keyword
    to the top of the file."""
    module_pos = code.find("module")
    lines = code.split("\n")
    moved = False
    ts_lines = []
    offset = 0
    kept = []
    for line in lines:
        is_ts = line.lstrip().startswith("`timescale")
        if is_ts and module_pos != -1 and offset > module_pos:
            ts_lines.append(line.strip())
            moved = True
        else:
            kept.append(line)
        offset += len(line) + 1
    if not moved:
        return code, False
    return "\n".join(ts_lines + kept), True


def strip_non_ascii(code: str) -> str:
    """Drop non-ASCII characters some chat models emit."""
    return "".join(ch for ch in code if ord(ch) < 128)


def rule_fix(raw: str) -> RuleFixResult:
    """Run the full rule-based pass over a raw LLM answer."""
    code, was_markdown = extract_code(raw)
    code = strip_non_ascii(code)
    code, moved = hoist_timescale(code)
    if not code.endswith("\n"):
        code += "\n"
    return RuleFixResult(
        code=code,
        has_module="module" in code,
        extracted_from_markdown=was_markdown,
        moved_timescale=moved,
    )


def validate_module_text(code: str) -> bool:
    """The §3.4 filter: a plausible module declaration with a non-empty
    body and a closing endmodule."""
    match = re.search(r"\bmodule\b.*?;(.*?)\bendmodule\b", code, re.DOTALL)
    if match is None:
        return False
    body = match.group(1).strip()
    return bool(body)
