"""Configuration for the RTLFixer framework."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..agents.react import DEFAULT_MAX_ITERATIONS
from ..sim.limits import SimLimits
from ..verilog.limits import ResourceLimits


@dataclass(frozen=True)
class RTLFixerConfig:
    """Everything that varies across the paper's experiments.

    Defaults match the paper's best configuration: ReAct prompting with
    RAG over Quartus-quality feedback, gpt-3.5 persona, temperature 0.4,
    at most 10 Thought-Action-Observation iterations.
    """

    prompting: str = "react"  # "react" | "oneshot"
    compiler: str = "quartus"  # "simple" | "iverilog" | "quartus"
    use_rag: bool = True
    retriever: str = "exact"  # "exact" | "fuzzy" | "jaccard" | "tfidf"
    tier: str = "gpt-3.5-sim"  # "gpt-3.5-sim" | "gpt-4-sim"
    temperature: float = 0.4
    max_iterations: int = DEFAULT_MAX_ITERATIONS
    apply_rule_fix: bool = True
    seed: int = 0
    #: Worker count for experiment fan-out (repro.runtime.ParallelRunner):
    #: 1 = serial, 0 = all CPUs, N = that many workers.  Parallelism never
    #: changes results -- trials are seeded explicitly, so a parallel run
    #: is bit-identical to a serial run at the same seed.
    jobs: int = 1
    #: Bounded retries for transient model/compiler faults (timeouts,
    #: injected chaos, API hiccups).  0 disables the retry layer; N
    #: allows N re-tries with deterministic exponential backoff
    #: (repro.runtime.RetryPolicy).  Retries never change results on the
    #: happy path -- only TransientError faults are retried.
    max_retries: int = 2
    #: Per-model-call timeout budget in seconds (None = unlimited).
    #: Over-budget calls count as retryable timeouts.
    step_timeout: Optional[float] = None
    #: Whole-repair deadline in seconds (None = unlimited, the batch
    #: default).  When set, :meth:`RTLFixer.fix` scopes an ambient
    #: :class:`repro.service.Deadline` around the run: the ReAct loop
    #: checks it every iteration and the retry layer refuses to dispatch
    #: or back off past it, so an over-budget repair stops mid-run with
    #: DeadlineExceededError.  Unlike ``step_timeout`` this can truncate
    #: a repair and therefore change its result, so it participates in
    #: the trial-key config digest (the repair service instead passes
    #: per-request deadlines ambiently, keeping its job keys
    #: deadline-free so journal replay works across budgets).
    deadline_s: Optional[float] = None
    #: Experiment-level failure handling: "raise" aborts the run on the
    #: first failed work unit (pending units are cancelled); "collect"
    #: isolates failures as per-unit WorkFailure records so one poisoned
    #: trial cannot sink a full Table 1 run.
    on_error: str = "raise"
    #: Resource budgets for every compile issued by the fixer's compiler
    #: (None = repro.verilog.limits.DEFAULT_LIMITS).  Budget violations
    #: surface as ordinary RESOURCE_LIMIT diagnostics in the agent's
    #: feedback, so a macro-bomb candidate degrades into a not-fixed
    #: trial instead of hanging or aborting a run.
    compile_limits: Optional[ResourceLimits] = None
    #: Sandbox budgets for every simulation the fixer runs (None =
    #: repro.sim.limits.DEFAULT_SIM_LIMITS).  The simulation counterpart
    #: of ``compile_limits``: budget overflows surface as typed ``limit``
    #: verdicts in the agent's feedback instead of hangs or crashes.
    #: Tighter budgets can change which candidates count as simulable,
    #: so (like ``compile_limits``) this participates in the trial-key
    #: config digest.
    sim_limits: Optional[SimLimits] = None
    #: Durable-run directory (repro.runtime.RunState): every completed
    #: trial is journaled there the moment it finishes, so a killed run
    #: resumes by replaying the journal and dispatching only the
    #: remainder.  None disables durability.  Like ``jobs``/``on_error``
    #: this is an execution knob -- it is excluded from the trial-key
    #: config digest and never changes results.
    run_dir: Optional[str] = None
    #: Circuit-breaker trip threshold: after this many *consecutive*
    #: non-transient trial failures the rest of the run fails fast as
    #: journaled SKIPPED trials (repro.runtime.CircuitBreaker).  0
    #: disables the breaker.  Requires ``on_error="collect"`` to have
    #: any effect (skips are collected records, not exceptions).
    breaker_threshold: int = 0
    #: LLM backend pool spec (repro.llm.pool.RoutingSpec.parse syntax,
    #: e.g. "cheap=gpt-3.5-sim,strong=gpt-4-sim"): route every model
    #: call through an escalation ladder of named backends instead of a
    #: single direct model.  None = direct model (the default).
    llm_pool: Optional[str] = None
    #: Climb one pool rung after this many failed ReAct iterations (the
    #: paper's gpt-3.5 -> gpt-4 axis as a runtime policy).  0 = never
    #: escalate; outage-driven failover still applies.  Changes which
    #: model answers, so (like llm_pool) it is part of the trial-key
    #: config digest.
    llm_escalate_after: int = 0
    #: Seeded probability of hedging a call to the next pool rung for
    #: tail latency.  The primary's reply is always preferred, so this
    #: is timing-only (execution knob, excluded from the config digest).
    llm_hedge: float = 0.0
    #: Per-backend client-side rate limit in requests/second (0 =
    #: unlimited).  Timing-only (execution knob).
    llm_rate: float = 0.0
    #: Per-backend in-flight call cap (0 = unlimited).  Timing-only
    #: (execution knob).
    llm_concurrency: int = 0

    def __post_init__(self) -> None:
        if self.prompting not in ("react", "oneshot"):
            raise ValueError(f"prompting must be react|oneshot, got {self.prompting!r}")
        if self.compiler not in ("simple", "iverilog", "quartus"):
            raise ValueError(f"unknown compiler {self.compiler!r}")
        if self.use_rag and self.compiler == "simple":
            raise ValueError(
                "RAG requires a compiler log to retrieve against; the "
                "'simple' feedback setting cannot use RAG (as in Table 1)"
            )
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = all CPUs)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0 (0 disables retries)")
        if self.step_timeout is not None and self.step_timeout <= 0:
            raise ValueError("step_timeout must be > 0 seconds (or None)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be > 0 seconds (or None)")
        if self.on_error not in ("raise", "collect"):
            raise ValueError(
                f"on_error must be raise|collect, got {self.on_error!r}"
            )
        if self.compile_limits is not None and not isinstance(
            self.compile_limits, ResourceLimits
        ):
            raise ValueError(
                "compile_limits must be a ResourceLimits instance or None"
            )
        if self.sim_limits is not None and not isinstance(
            self.sim_limits, SimLimits
        ):
            raise ValueError(
                "sim_limits must be a SimLimits instance or None"
            )
        if self.breaker_threshold < 0:
            raise ValueError(
                "breaker_threshold must be >= 0 (0 disables the breaker)"
            )
        if self.llm_escalate_after < 0:
            raise ValueError(
                "llm_escalate_after must be >= 0 (0 disables escalation)"
            )
        if not 0.0 <= self.llm_hedge <= 1.0:
            raise ValueError(f"llm_hedge must be in [0, 1], got {self.llm_hedge}")
        if self.llm_rate < 0:
            raise ValueError("llm_rate must be >= 0 (0 = unlimited)")
        if self.llm_concurrency < 0:
            raise ValueError("llm_concurrency must be >= 0 (0 = unlimited)")

    def label(self) -> str:
        """Human-readable configuration summary for reports."""
        rag = "w/ RAG" if self.use_rag else "w/o RAG"
        return f"{self.prompting}+{self.compiler} {rag} ({self.tier})"
