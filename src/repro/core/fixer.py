"""RTLFixer: the public entry point of the framework (paper §3.1).

Wires together the compiler facade, the RAG database + retriever, the
(simulated or API-backed) LLM, and the chosen prompting strategy.

>>> from repro.core import RTLFixer
>>> fixer = RTLFixer()                       # ReAct + RAG + Quartus
>>> result = fixer.fix(broken_verilog)
>>> result.success, result.iterations
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..agents.oneshot import OneShotAgent
from ..agents.react import AgentResult, ReActAgent
from ..diagnostics import Compiler
from ..llm.base import RepairModel
from ..llm.simulated import SimulatedLLM
from ..rag.database import GuidanceDatabase
from ..rag.guidance_data import build_default_database
from ..rag.retrievers import Retriever, make_retriever
from .config import RTLFixerConfig


class RTLFixer:
    """Automatic syntax-error fixing for Verilog with LLM agents."""

    def __init__(
        self,
        config: Optional[RTLFixerConfig] = None,
        model: Optional[RepairModel] = None,
        database: Optional[GuidanceDatabase] = None,
        **overrides,
    ):
        """``overrides`` are RTLFixerConfig fields, e.g.
        ``RTLFixer(prompting="oneshot", compiler="iverilog")``."""
        if config is None:
            config = RTLFixerConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or field overrides, not both")
        self.config = config
        self.compiler = Compiler(flavor=config.compiler)
        self.database = database or build_default_database()
        self.model: RepairModel = model or SimulatedLLM(
            tier=config.tier, temperature=config.temperature, seed=config.seed
        )

        self.retriever: Optional[Retriever] = None
        if config.use_rag:
            self.retriever = make_retriever(
                config.retriever, self.database, config.compiler
            )

        if config.prompting == "react":
            self.agent = ReActAgent(
                model=self.model,
                compiler=self.compiler,
                retriever=self.retriever,
                max_iterations=config.max_iterations,
                apply_rule_fix=config.apply_rule_fix,
            )
        else:
            self.agent = OneShotAgent(
                model=self.model,
                compiler=self.compiler,
                retriever=self.retriever,
                apply_rule_fix=config.apply_rule_fix,
            )

    def fix(self, code: str, description: str = "") -> AgentResult:
        """Debug one erroneous implementation until it compiles (or the
        iteration budget runs out)."""
        return self.agent.run(code, description=description)

    def with_seed(self, seed: int) -> "RTLFixer":
        """A copy of this fixer with a different sampling seed (used for
        the paper's n=10 repeated trials)."""
        return RTLFixer(
            config=dataclasses.replace(self.config, seed=seed),
            database=self.database,
        )
