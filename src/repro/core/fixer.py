"""RTLFixer: the public entry point of the framework (paper §3.1).

Wires together the compiler facade, the RAG database + retriever, the
(simulated or API-backed) LLM, and the chosen prompting strategy.  When
``config.max_retries > 0`` (the default) the model and compiler handed
to the agent are wrapped in the runtime's retry layer, so transient
faults (timeouts, injected chaos, API hiccups) are retried with
deterministic backoff instead of killing the whole debugging run.

>>> from repro.core import RTLFixer
>>> fixer = RTLFixer()                       # ReAct + RAG + Quartus
>>> result = fixer.fix(broken_verilog)
>>> result.success, result.iterations
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..agents.oneshot import OneShotAgent
from ..agents.react import AgentResult, ReActAgent
from ..diagnostics import Compiler
from ..llm.base import RepairModel
from ..llm.pool import PooledRepairModel, routing_from_config
from ..llm.simulated import SimulatedLLM
from ..rag.database import GuidanceDatabase
from ..rag.guidance_data import build_default_database
from ..rag.retrievers import Retriever, make_retriever
from ..runtime.retry import RetryingCompiler, RetryingRepairModel, RetryPolicy
from ..service.deadline import Deadline, use_deadline
from .config import RTLFixerConfig


class RTLFixer:
    """Automatic syntax-error fixing for Verilog with LLM agents."""

    def __init__(
        self,
        config: Optional[RTLFixerConfig] = None,
        model: Optional[RepairModel] = None,
        database: Optional[GuidanceDatabase] = None,
        **overrides,
    ):
        """``overrides`` are RTLFixerConfig fields, e.g.
        ``RTLFixer(prompting="oneshot", compiler="iverilog")``."""
        if config is None:
            config = RTLFixerConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or field overrides, not both")
        self.config = config
        # One compiler per fixer: its pipeline session keeps per-stage
        # artifacts warm across the agent's repair iterations.
        self.compiler = Compiler(
            flavor=config.compiler, limits=config.compile_limits
        )
        self.database = database or build_default_database()
        self._injected_model = model
        self.model: RepairModel = model or self._build_model(config)

        # Robustness seams: only TransientError faults are ever retried,
        # so wrapping is bit-identical to not wrapping on the happy path.
        agent_model: RepairModel = self.model
        agent_compiler = self.compiler
        if config.max_retries > 0 or config.step_timeout is not None:
            policy = RetryPolicy(
                max_retries=config.max_retries,
                timeout=config.step_timeout,
                seed=config.seed,
            )
            agent_model = RetryingRepairModel(agent_model, policy)
            agent_compiler = RetryingCompiler(agent_compiler, policy)

        self.retriever: Optional[Retriever] = None
        if config.use_rag:
            self.retriever = make_retriever(
                config.retriever, self.database, config.compiler
            )

        if config.prompting == "react":
            self.agent = ReActAgent(
                model=agent_model,
                compiler=agent_compiler,
                retriever=self.retriever,
                max_iterations=config.max_iterations,
                apply_rule_fix=config.apply_rule_fix,
            )
        else:
            self.agent = OneShotAgent(
                model=agent_model,
                compiler=agent_compiler,
                retriever=self.retriever,
                apply_rule_fix=config.apply_rule_fix,
            )

    @staticmethod
    def _build_model(config: RTLFixerConfig) -> RepairModel:
        """The fixer's own model: pooled when a routing spec is
        configured (``config.llm_pool`` or the ambient
        :func:`repro.llm.pool.use_llm_routing` scope), else the direct
        simulated model."""
        routing = routing_from_config(config)
        if routing is not None:
            return PooledRepairModel(
                routing,
                tier=config.tier,
                temperature=config.temperature,
                seed=config.seed,
            )
        return SimulatedLLM(
            tier=config.tier, temperature=config.temperature, seed=config.seed
        )

    @property
    def injected_model(self) -> Optional[RepairModel]:
        """The caller-provided model, or ``None`` when this fixer built
        its own :class:`~repro.llm.simulated.SimulatedLLM` from config.
        Experiment drivers use this to carry custom models into
        parallel workers."""
        return self._injected_model

    def fix(self, code: str, description: str = "") -> AgentResult:
        """Debug one erroneous implementation until it compiles (or the
        iteration budget runs out).

        With ``config.deadline_s`` set, the whole repair runs under an
        ambient :class:`~repro.service.Deadline`: the ReAct loop and
        the retry layer stop mid-run with
        :class:`~repro.errors.DeadlineExceededError` once the budget is
        gone.  An already-scoped ambient deadline (the repair service's
        per-request budget) is left in place -- the config knob only
        fills the gap for batch callers.  ``config.sim_limits``
        similarly scopes ambient sandbox budgets over the run, so every
        simulation the repair triggers is resource-bounded.
        """
        if self.config.sim_limits is not None:
            from ..sim.limits import use_sim_limits

            with use_sim_limits(self.config.sim_limits):
                return self._fix_under_deadline(code, description)
        return self._fix_under_deadline(code, description)

    def _fix_under_deadline(self, code: str, description: str) -> AgentResult:
        if self.config.deadline_s is not None:
            from ..service.deadline import current_deadline

            if current_deadline() is None:
                with use_deadline(Deadline(self.config.deadline_s)):
                    return self.agent.run(code, description=description)
        return self.agent.run(code, description=description)

    def with_seed(self, seed: int) -> "RTLFixer":
        """A copy of this fixer with a different sampling seed (used for
        the paper's n=10 repeated trials).

        A caller-injected model is carried through: it is re-seeded via
        its own ``with_seed`` when it has one (every bundled model
        does), or reused as-is otherwise -- it is never silently
        replaced by a fresh default model.
        """
        model = self._injected_model
        if model is not None:
            reseed = getattr(model, "with_seed", None)
            if callable(reseed):
                model = reseed(seed)
        return RTLFixer(
            config=dataclasses.replace(self.config, seed=seed),
            model=model,
            database=self.database,
        )
