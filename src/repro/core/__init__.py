"""Core framework: the RTLFixer API, its configuration, and the
rule-based pre-fixer."""

from .config import RTLFixerConfig
from .fixer import RTLFixer
from .rulefix import RuleFixResult, extract_code, rule_fix, validate_module_text

__all__ = [
    "RTLFixer",
    "RTLFixerConfig",
    "RuleFixResult",
    "extract_code",
    "rule_fix",
    "validate_module_text",
]
