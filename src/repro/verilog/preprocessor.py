r"""Minimal Verilog preprocessor.

Supports the directives that actually occur in VerilogEval-style code:

* ``\`timescale`` -- recorded and stripped (a *misplaced* timescale, i.e.
  one appearing after the first ``module`` keyword, is what the paper's
  rule-based pre-fixer repairs, so we keep track of where it appeared);
* ``\`define NAME value`` / ``\`NAME`` expansion (object-like macros,
  expanded *recursively* with cycle detection -- a self-referential or
  mutually-recursive ``\`define`` terminates with a diagnostic instead
  of looping);
* ``\`include`` -- resolved against an in-memory file map, recursively
  (included files may define macros and include further files) with a
  nesting-depth bound against self-includes;
* ``\`ifdef / \`ifndef / \`else / \`endif`` conditional blocks;
* ``\`default_nettype`` -- recorded.

Directive lines are blanked in place (newlines preserved) so that token
spans and line numbers in diagnostics still match the original source.
All expansion work is budgeted through a
:class:`~repro.verilog.limits.LimitTracker` (macro-expansion count,
macro nesting depth, include depth), so macro/include bombs degrade
into ``RESOURCE_LIMIT`` diagnostics rather than hangs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..diagnostics.codes import ErrorCategory
from ..diagnostics.diagnostic import Diagnostic
from .limits import LimitTracker
from .source import SourceFile, Span

_DIRECTIVE_RE = re.compile(r"`([A-Za-z_][A-Za-z0-9_$]*)")


@dataclass
class PreprocessResult:
    """Output of :func:`preprocess`."""

    source: SourceFile
    defines: dict[str, str] = field(default_factory=dict)
    timescale: str | None = None
    #: 1-based line numbers of every `timescale directive found.
    timescale_lines: list[int] = field(default_factory=list)
    default_nettype: str | None = None
    diagnostics: list[Diagnostic] = field(default_factory=list)


def preprocess(
    source: SourceFile,
    include_files: dict[str, str] | None = None,
    defines: dict[str, str] | None = None,
    tracker: LimitTracker | None = None,
    _macros: dict[str, str] | None = None,
    _depth: int = 0,
) -> PreprocessResult:
    """Expand directives in ``source``.

    ``include_files`` maps include names to their text (the environment
    has no real filesystem layout for DUTs).  Unknown macros produce an
    ``UNDECLARED_ID`` diagnostic, matching how compilers report undefined
    macros as unknown identifiers.  ``tracker`` carries the resource
    budgets (one with default limits is created when omitted);
    ``_macros``/``_depth`` are internal plumbing for recursive
    ``\\`include`` expansion and share macro state with the includer.
    """
    include_files = include_files or {}
    macros: dict[str, str] = _macros if _macros is not None else dict(defines or {})
    if tracker is None:
        tracker = LimitTracker()
    result = PreprocessResult(source=source, defines=macros)

    lines = source.text.split("\n")
    out_lines: list[str] = []
    # Stack of booleans: is the current `ifdef branch active?
    cond_stack: list[bool] = []

    def active() -> bool:
        return all(cond_stack)

    for lineno, line in enumerate(lines, start=1):
        stripped = line.lstrip()
        if stripped.startswith("`"):
            out_lines.append(_handle_directive(
                line, stripped, lineno, macros, include_files, cond_stack,
                active, result, source, tracker, _depth,
            ))
            continue
        if not active():
            out_lines.append("")
            continue
        out_lines.append(
            _expand_macros(line, lineno, macros, result, source, tracker)
        )

    if cond_stack:
        result.diagnostics.append(
            Diagnostic(
                ErrorCategory.UNBALANCED_BLOCK,
                _line_span(source, len(lines)),
                {"expected": "`endif"},
            )
        )

    result.source = SourceFile(source.name, "\n".join(out_lines))
    return result


def _handle_directive(
    line: str,
    stripped: str,
    lineno: int,
    macros: dict[str, str],
    include_files: dict[str, str],
    cond_stack: list[bool],
    active,
    result: PreprocessResult,
    source: SourceFile,
    tracker: LimitTracker,
    depth: int,
) -> str:
    match = _DIRECTIVE_RE.match(stripped)
    if match is None:
        result.diagnostics.append(
            Diagnostic(ErrorCategory.SYNTAX_NEAR, _line_span(source, lineno), {"near": "`"})
        )
        return ""
    name = match.group(1)
    rest = stripped[match.end() :].strip()

    if name == "ifdef":
        cond_stack.append(rest.split()[0] in macros if rest else False)
    elif name == "ifndef":
        cond_stack.append(rest.split()[0] not in macros if rest else True)
    elif name == "else":
        if cond_stack:
            cond_stack[-1] = not cond_stack[-1]
    elif name == "endif":
        if cond_stack:
            cond_stack.pop()
    elif not active():
        pass  # other directives in inactive branches are skipped
    elif name == "timescale":
        result.timescale = rest
        result.timescale_lines.append(lineno)
    elif name == "default_nettype":
        result.default_nettype = rest
    elif name == "define":
        parts = rest.split(None, 1)
        if parts:
            macros[parts[0]] = parts[1] if len(parts) > 1 else "1"
    elif name == "undef":
        macros.pop(rest.split()[0] if rest else "", None)
    elif name == "include":
        return _expand_include(
            rest, lineno, macros, include_files, result, source, tracker, depth
        )
    elif name in macros:
        # Object-like macro used at the start of a line.
        return _expand_macros(line, lineno, macros, result, source, tracker)
    else:
        result.diagnostics.append(
            Diagnostic(
                ErrorCategory.UNDECLARED_ID,
                _line_span(source, lineno),
                {"name": name, "what": "macro"},
            )
        )
    return ""


def _expand_include(
    rest: str,
    lineno: int,
    macros: dict[str, str],
    include_files: dict[str, str],
    result: PreprocessResult,
    source: SourceFile,
    tracker: LimitTracker,
    depth: int,
) -> str:
    """Expand one ``\\`include`` directive, recursively and bounded.

    The included text is preprocessed in full (its ``\\`define`` s land
    in the shared macro table, its own includes nest) and inlined on one
    output line so the includer's line numbers stay stable.  A nesting
    depth past ``max_include_depth`` -- the self-include bomb -- stops
    with a single ``RESOURCE_LIMIT`` diagnostic.
    """
    fname = rest.strip('"<>')
    if fname not in include_files:
        result.diagnostics.append(
            Diagnostic(
                ErrorCategory.UNDECLARED_ID,
                _line_span(source, lineno),
                {"name": fname, "what": "include file"},
            )
        )
        return ""
    if not tracker.within("include nesting depth", depth + 1):
        tracker.report_overflow(
            "include nesting depth", _line_span(source, lineno), result.diagnostics
        )
        return ""
    sub = preprocess(
        SourceFile(fname, include_files[fname]),
        include_files=include_files,
        tracker=tracker,
        _macros=macros,
        _depth=depth + 1,
    )
    result.diagnostics.extend(sub.diagnostics)
    if result.timescale is None:
        result.timescale = sub.timescale
    if result.default_nettype is None:
        result.default_nettype = sub.default_nettype
    return sub.source.text.replace("\n", " ")


def _expand_macros(
    line: str,
    lineno: int,
    macros: dict[str, str],
    result: PreprocessResult,
    source: SourceFile,
    tracker: LimitTracker,
    stack: tuple[str, ...] = (),
) -> str:
    """Expand ``\\`NAME`` uses in ``line``, recursively and bounded.

    Macro bodies are re-expanded (so chained defines resolve), with
    three guards that each terminate cleanly in a diagnostic: an active
    expansion *stack* catches self-referential / mutually-recursive
    defines, a depth bound catches deep non-cyclic chains, and a total
    expansion budget catches exponential fan-out (macro bombs).
    """
    if "`" not in line:
        return line

    def repl(match: re.Match[str]) -> str:
        name = match.group(1)
        if name not in macros:
            result.diagnostics.append(
                Diagnostic(
                    ErrorCategory.UNDECLARED_ID,
                    _line_span(source, lineno),
                    {"name": name, "what": "macro"},
                )
            )
            return "0"
        if name in stack:
            # The termination bugfix: a `define cycle must not recurse
            # forever.  Report once per macro name, substitute a benign
            # token and carry on.
            key = f"recursive macro `{name}`"
            if key not in tracker.reported:
                tracker.reported.add(key)
                result.diagnostics.append(
                    Diagnostic(
                        ErrorCategory.RESOURCE_LIMIT,
                        _line_span(source, lineno),
                        {"what": key + " expansion",
                         "limit": tracker.limits.max_macro_depth},
                    )
                )
            return "0"
        if not tracker.within("macro nesting depth", len(stack) + 1):
            tracker.report_overflow(
                "macro nesting depth", _line_span(source, lineno),
                result.diagnostics,
            )
            return "0"
        if not tracker.charge("macro expansions"):
            tracker.report_overflow(
                "macro expansions", _line_span(source, lineno),
                result.diagnostics,
            )
            return "0"
        return _expand_macros(
            macros[name], lineno, macros, result, source, tracker,
            stack + (name,),
        )

    return _DIRECTIVE_RE.sub(repl, line)


def _line_span(source: SourceFile, lineno: int) -> Span:
    lineno = max(1, min(lineno, source.num_lines))
    start = sum(len(source.line_text(i)) + 1 for i in range(1, lineno))
    return Span(source, start, start + max(1, len(source.line_text(lineno))))
