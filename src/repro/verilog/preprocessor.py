r"""Minimal Verilog preprocessor.

Supports the directives that actually occur in VerilogEval-style code:

* ``\`timescale`` -- recorded and stripped (a *misplaced* timescale, i.e.
  one appearing after the first ``module`` keyword, is what the paper's
  rule-based pre-fixer repairs, so we keep track of where it appeared);
* ``\`define NAME value`` / ``\`NAME`` expansion (object-like macros);
* ``\`include`` -- resolved against an in-memory file map;
* ``\`ifdef / \`ifndef / \`else / \`endif`` conditional blocks;
* ``\`default_nettype`` -- recorded.

Directive lines are blanked in place (newlines preserved) so that token
spans and line numbers in diagnostics still match the original source.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..diagnostics.codes import ErrorCategory
from ..diagnostics.diagnostic import Diagnostic
from .source import SourceFile, Span

_DIRECTIVE_RE = re.compile(r"`([A-Za-z_][A-Za-z0-9_$]*)")


@dataclass
class PreprocessResult:
    """Output of :func:`preprocess`."""

    source: SourceFile
    defines: dict[str, str] = field(default_factory=dict)
    timescale: str | None = None
    #: 1-based line numbers of every `timescale directive found.
    timescale_lines: list[int] = field(default_factory=list)
    default_nettype: str | None = None
    diagnostics: list[Diagnostic] = field(default_factory=list)


def preprocess(
    source: SourceFile,
    include_files: dict[str, str] | None = None,
    defines: dict[str, str] | None = None,
) -> PreprocessResult:
    """Expand directives in ``source``.

    ``include_files`` maps include names to their text (the environment
    has no real filesystem layout for DUTs).  Unknown macros produce an
    ``UNDECLARED_ID`` diagnostic, matching how compilers report undefined
    macros as unknown identifiers.
    """
    include_files = include_files or {}
    macros: dict[str, str] = dict(defines or {})
    result = PreprocessResult(source=source, defines=macros)

    lines = source.text.split("\n")
    out_lines: list[str] = []
    # Stack of booleans: is the current `ifdef branch active?
    cond_stack: list[bool] = []

    def active() -> bool:
        return all(cond_stack)

    for lineno, line in enumerate(lines, start=1):
        stripped = line.lstrip()
        if stripped.startswith("`"):
            out_lines.append(_handle_directive(
                line, stripped, lineno, macros, include_files, cond_stack,
                active, result, source,
            ))
            continue
        if not active():
            out_lines.append("")
            continue
        out_lines.append(_expand_macros(line, lineno, macros, result, source))

    if cond_stack:
        result.diagnostics.append(
            Diagnostic(
                ErrorCategory.UNBALANCED_BLOCK,
                _line_span(source, len(lines)),
                {"expected": "`endif"},
            )
        )

    result.source = SourceFile(source.name, "\n".join(out_lines))
    return result


def _handle_directive(
    line: str,
    stripped: str,
    lineno: int,
    macros: dict[str, str],
    include_files: dict[str, str],
    cond_stack: list[bool],
    active,
    result: PreprocessResult,
    source: SourceFile,
) -> str:
    match = _DIRECTIVE_RE.match(stripped)
    if match is None:
        result.diagnostics.append(
            Diagnostic(ErrorCategory.SYNTAX_NEAR, _line_span(source, lineno), {"near": "`"})
        )
        return ""
    name = match.group(1)
    rest = stripped[match.end() :].strip()

    if name == "ifdef":
        cond_stack.append(rest.split()[0] in macros if rest else False)
    elif name == "ifndef":
        cond_stack.append(rest.split()[0] not in macros if rest else True)
    elif name == "else":
        if cond_stack:
            cond_stack[-1] = not cond_stack[-1]
    elif name == "endif":
        if cond_stack:
            cond_stack.pop()
    elif not active():
        pass  # other directives in inactive branches are skipped
    elif name == "timescale":
        result.timescale = rest
        result.timescale_lines.append(lineno)
    elif name == "default_nettype":
        result.default_nettype = rest
    elif name == "define":
        parts = rest.split(None, 1)
        if parts:
            macros[parts[0]] = parts[1] if len(parts) > 1 else "1"
    elif name == "undef":
        macros.pop(rest.split()[0] if rest else "", None)
    elif name == "include":
        fname = rest.strip('"<>')
        if fname in include_files:
            return include_files[fname].replace("\n", " ")
        result.diagnostics.append(
            Diagnostic(
                ErrorCategory.UNDECLARED_ID,
                _line_span(source, lineno),
                {"name": fname, "what": "include file"},
            )
        )
    elif name in macros:
        # Object-like macro used at the start of a line.
        return _expand_macros(line, lineno, macros, result, source)
    else:
        result.diagnostics.append(
            Diagnostic(
                ErrorCategory.UNDECLARED_ID,
                _line_span(source, lineno),
                {"name": name, "what": "macro"},
            )
        )
    return ""


def _expand_macros(
    line: str,
    lineno: int,
    macros: dict[str, str],
    result: PreprocessResult,
    source: SourceFile,
) -> str:
    if "`" not in line:
        return line

    def repl(match: re.Match[str]) -> str:
        name = match.group(1)
        if name in macros:
            return macros[name]
        result.diagnostics.append(
            Diagnostic(
                ErrorCategory.UNDECLARED_ID,
                _line_span(source, lineno),
                {"name": name, "what": "macro"},
            )
        )
        return "0"

    return _DIRECTIVE_RE.sub(repl, line)


def _line_span(source: SourceFile, lineno: int) -> Span:
    lineno = max(1, min(lineno, source.num_lines))
    start = sum(len(source.line_text(i)) + 1 for i in range(1, lineno))
    return Span(source, start, start + max(1, len(source.line_text(lineno))))
