"""Parsing of Verilog integer literal text into 4-state values.

Shared by the parser (building :class:`~repro.verilog.ast.Number` nodes)
and by repair strategies that need to reason about literal widths.
"""

from __future__ import annotations

from dataclasses import dataclass

_BASE_RADIX = {"b": 2, "o": 8, "d": 10, "h": 16}
_BITS_PER_DIGIT = {"b": 1, "o": 3, "h": 4}


@dataclass(frozen=True)
class ParsedLiteral:
    bits: int
    xmask: int
    width: int | None  # None for unsized plain decimals
    signed: bool

    @property
    def is_fully_known(self) -> bool:
        return self.xmask == 0


def parse_literal(text: str) -> ParsedLiteral:
    """Parse literal text like ``8'hFF``, ``4'b10x1``, ``'d12``, ``42``.

    Assumes the lexer already validated digits; malformed input falls
    back to zero rather than raising, because the lexer substitutes a
    ``0`` token after reporting BAD_LITERAL.
    """
    text = text.replace("_", "").strip()
    if "'" not in text:
        try:
            return ParsedLiteral(int(text or "0", 10), 0, None, True)
        except ValueError:
            return ParsedLiteral(0, 0, None, True)

    size_text, _, rest = text.partition("'")
    if not size_text.isdigit():
        size_text = ""
    signed = False
    if rest[:1] in ("s", "S"):
        signed = True
        rest = rest[1:]
    base_ch = rest[:1].lower()
    digits = rest[1:].lower()
    if base_ch not in _BASE_RADIX or not digits:
        return ParsedLiteral(0, 0, int(size_text) if size_text else None, signed)

    if base_ch == "d":
        try:
            value = int(digits, 10)
        except ValueError:  # 'dx / 'dz
            width = int(size_text) if size_text else 32
            mask = (1 << width) - 1
            return ParsedLiteral(mask if digits[:1] == "z" else 0, mask, width, signed)
        width = int(size_text) if size_text else 32
        return ParsedLiteral(value & ((1 << width) - 1), 0, width, signed)

    bits_per = _BITS_PER_DIGIT[base_ch]
    bits = 0
    xmask = 0
    for ch in digits:
        bits <<= bits_per
        xmask <<= bits_per
        digit_mask = (1 << bits_per) - 1
        if ch in "x?":
            xmask |= digit_mask
        elif ch == "z":
            xmask |= digit_mask
            bits |= digit_mask
        else:
            try:
                bits |= int(ch, _BASE_RADIX[base_ch])
            except ValueError:
                # Digit illegal for the base: the lexer reports these as
                # BAD_LITERAL; treat the digit as X here.
                xmask |= digit_mask
    natural_width = len(digits) * bits_per
    width = int(size_text) if size_text else max(natural_width, 1)
    mask = (1 << width) - 1
    if width < natural_width:
        bits &= mask
        xmask &= mask
    elif xmask >> (natural_width - 1) & 1 if natural_width else 0:
        # X/Z in the MSB digit extends left when the literal is widened.
        ext = mask ^ ((1 << natural_width) - 1)
        xmask |= ext
        if bits >> (natural_width - 1) & 1:
            bits |= ext
    return ParsedLiteral(bits & mask, xmask & mask, width, signed)


def format_literal(value: int, width: int, base: str = "h") -> str:
    """Render ``value`` as a sized Verilog literal, e.g. ``8'hff``."""
    value &= (1 << width) - 1
    if base == "b":
        return f"{width}'b{value:0{width}b}"
    if base == "d":
        return f"{width}'d{value}"
    ndigits = (width + 3) // 4
    return f"{width}'h{value:0{ndigits}x}"
