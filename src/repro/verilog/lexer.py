"""Hand-written lexer for the supported Verilog subset.

The lexer is error-tolerant: malformed constructs produce a
:class:`~repro.diagnostics.diagnostic.Diagnostic` in the supplied sink
and a best-effort replacement token, so that parsing (and therefore
diagnosis of *further* errors) can continue -- mirroring how real
compilers report several errors per run.
"""

from __future__ import annotations

from ..diagnostics.codes import ErrorCategory
from ..diagnostics.diagnostic import Diagnostic
from .source import SourceFile, Span
from .tokens import KEYWORDS, MULTI_PUNCT, SINGLE_PUNCT, Token, TokenKind

_BASE_DIGITS = {
    "b": "01xz?",
    "o": "01234567xz?",
    "d": "0123456789",
    "h": "0123456789abcdef" + "xz?",
}

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789$")
_DIGITS = set("0123456789")


class Lexer:
    """Tokenizes one :class:`SourceFile`, reporting problems to ``sink``.

    With a :class:`~repro.verilog.limits.LimitTracker` attached, the
    token stream is budgeted: once ``max_tokens`` is exhausted the lexer
    reports a single ``RESOURCE_LIMIT`` diagnostic and terminates the
    stream with EOF instead of chewing through megabytes of garbage.
    """

    def __init__(
        self,
        source: SourceFile,
        sink: list[Diagnostic],
        tracker=None,
        start: int = 0,
    ):
        self.source = source
        self.text = source.text
        #: ``start`` lets an incremental caller resume lexing mid-source
        #: (the lexer is stateless between tokens, so resuming at a known
        #: token boundary yields exactly the cold token suffix).
        self.pos = start
        self.sink = sink
        self.tracker = tracker

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            if self.tracker is not None and not self.tracker.charge("tokens"):
                self.tracker.report_overflow(
                    "tokens", self._span(self.pos, self.pos + 1), self.sink
                )
                tokens.append(Token(TokenKind.EOF, "", self._span(self.pos)))
                return tokens
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # -- internals ---------------------------------------------------

    def _span(self, start: int, end: int | None = None) -> Span:
        return Span(self.source, start, self.pos if end is None else end)

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.text[idx] if idx < len(self.text) else ""

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif ch == "/" and self._peek(1) == "/":
                nl = self.text.find("\n", self.pos)
                self.pos = len(self.text) if nl == -1 else nl
            elif ch == "/" and self._peek(1) == "*":
                close = self.text.find("*/", self.pos + 2)
                self.pos = len(self.text) if close == -1 else close + 2
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        start = self.pos
        if self.pos >= len(self.text):
            return Token(TokenKind.EOF, "", self._span(start))
        ch = self.text[self.pos]

        if ch in _IDENT_START:
            return self._lex_ident(start)
        if ch in _DIGITS:
            return self._lex_number(start)
        if ch == "'":
            return self._lex_based_literal(start, size_digits="")
        if ch == '"':
            return self._lex_string(start)
        if ch == "$":
            return self._lex_system_ident(start)
        if ch == "\\":
            return self._lex_escaped_ident(start)
        return self._lex_punct(start)

    def _lex_ident(self, start: int) -> Token:
        while self._peek() in _IDENT_CONT:
            self.pos += 1
        value = self.text[start : self.pos]
        kind = TokenKind.KEYWORD if value in KEYWORDS else TokenKind.IDENT
        return Token(kind, value, self._span(start))

    def _lex_escaped_ident(self, start: int) -> Token:
        self.pos += 1  # backslash
        while self._peek() not in ("", " ", "\t", "\r", "\n"):
            self.pos += 1
        value = self.text[start + 1 : self.pos]
        if not value:
            self.sink.append(
                Diagnostic(ErrorCategory.SYNTAX_NEAR, self._span(start), {"near": "\\"})
            )
            value = "_"
        return Token(TokenKind.IDENT, value, self._span(start))

    def _lex_system_ident(self, start: int) -> Token:
        self.pos += 1  # $
        while self._peek() in _IDENT_CONT:
            self.pos += 1
        value = self.text[start : self.pos]
        if value == "$":
            self.sink.append(
                Diagnostic(ErrorCategory.SYNTAX_NEAR, self._span(start), {"near": "$"})
            )
        return Token(TokenKind.SYSTEM_IDENT, value, self._span(start))

    def _lex_string(self, start: int) -> Token:
        self.pos += 1
        while self._peek() not in ("", '"', "\n"):
            if self._peek() == "\\":
                self.pos += 1
            self.pos += 1
        if self._peek() == '"':
            self.pos += 1
        else:
            self.sink.append(
                Diagnostic(
                    ErrorCategory.SYNTAX_NEAR,
                    self._span(start),
                    {"near": "unterminated string"},
                )
            )
        return Token(TokenKind.STRING, self.text[start : self.pos], self._span(start))

    def _lex_number(self, start: int) -> Token:
        while self._peek() in _DIGITS or self._peek() == "_":
            self.pos += 1
        if self._peek() == "'":
            return self._lex_based_literal(start, size_digits=self.text[start : self.pos])
        if self._peek() == "." and self._peek(1) in _DIGITS:
            self.pos += 1
            while self._peek() in _DIGITS or self._peek() == "_":
                self.pos += 1
            return Token(TokenKind.REAL, self.text[start : self.pos], self._span(start))
        return Token(TokenKind.NUMBER, self.text[start : self.pos], self._span(start))

    def _lex_based_literal(self, start: int, size_digits: str) -> Token:
        self.pos += 1  # the apostrophe
        signed = False
        if self._peek() in ("s", "S"):
            signed = True
            self.pos += 1
        base_ch = self._peek().lower()
        if base_ch not in _BASE_DIGITS:
            self.sink.append(
                Diagnostic(
                    ErrorCategory.BAD_LITERAL,
                    self._span(start),
                    {"literal": self.text[start : self.pos + 1]},
                )
            )
            return Token(TokenKind.NUMBER, "0", self._span(start))
        self.pos += 1
        digit_start = self.pos
        while self._peek().lower() in "0123456789abcdefxz?_" and self._peek() != "":
            self.pos += 1
        digits = self.text[digit_start : self.pos].lower().replace("_", "")
        valid = _BASE_DIGITS[base_ch]
        literal = self.text[start : self.pos]
        if not digits or any(d not in valid for d in digits):
            self.sink.append(
                Diagnostic(
                    ErrorCategory.BAD_LITERAL, self._span(start), {"literal": literal}
                )
            )
            return Token(TokenKind.NUMBER, "0", self._span(start))
        del signed  # recorded in the literal text; value parsing happens later
        return Token(TokenKind.NUMBER, literal, self._span(start))

    def _lex_punct(self, start: int) -> Token:
        for op in MULTI_PUNCT:
            if self.text.startswith(op, self.pos):
                self.pos += len(op)
                return Token(TokenKind.PUNCT, op, self._span(start))
        ch = self.text[self.pos]
        self.pos += 1
        if ch not in SINGLE_PUNCT:
            self.sink.append(
                Diagnostic(ErrorCategory.SYNTAX_NEAR, self._span(start), {"near": ch})
            )
            # Substitute a harmless token so parsing continues.
            return Token(TokenKind.PUNCT, ";", self._span(start))
        return Token(TokenKind.PUNCT, ch, self._span(start))


def tokenize(
    source: SourceFile, sink: list[Diagnostic] | None = None, tracker=None
) -> list[Token]:
    """Convenience wrapper: tokenize ``source``, optionally collecting
    diagnostics into ``sink`` (discarded when not provided) and charging
    the token budget of ``tracker``."""
    return Lexer(source, sink if sink is not None else [], tracker=tracker).tokenize()
