"""Verilog front-end: lexer, preprocessor, parser and elaborator.

This package is the stand-in for the parsing/analysis half of iverilog
and Quartus in the paper's setup (see DESIGN.md).  Typical use goes
through :func:`repro.diagnostics.compile_source`, which wires these
stages together and renders diagnostics in a chosen compiler flavour.
"""

from .ast import Design, Module
from .elaborate import ElabDesign, ElabModule, const_eval, elaborate
from .lexer import Lexer, tokenize
from .limits import (
    DEFAULT_LIMITS,
    FUZZ_LIMITS,
    LIMIT_KINDS,
    LimitTracker,
    ResourceLimits,
)
from .literal import ParsedLiteral, format_literal, parse_literal
from .parser import Parser, parse
from .preprocessor import PreprocessResult, preprocess
from .source import SourceFile, Span
from .symbols import Scope, Symbol
from .writer import write_design, write_expr, write_module, write_stmt

# Imported last: the staged pipeline composes every front-end stage above.
from .pipeline import (
    DEFAULT_STAGE_CACHE,
    DEFAULT_STAGE_MAXSIZE,
    Artifact,
    CompileSession,
    PipelineStats,
    Stage,
    StageCache,
    get_active_stage_cache,
    no_stage_cache,
    result_fingerprint,
    set_active_stage_cache,
    use_stage_cache,
)

__all__ = [
    "Artifact",
    "CompileSession",
    "DEFAULT_LIMITS",
    "DEFAULT_STAGE_CACHE",
    "DEFAULT_STAGE_MAXSIZE",
    "PipelineStats",
    "Stage",
    "StageCache",
    "get_active_stage_cache",
    "no_stage_cache",
    "result_fingerprint",
    "set_active_stage_cache",
    "use_stage_cache",
    "Design",
    "ElabDesign",
    "ElabModule",
    "FUZZ_LIMITS",
    "LIMIT_KINDS",
    "Lexer",
    "LimitTracker",
    "Module",
    "ParsedLiteral",
    "Parser",
    "PreprocessResult",
    "ResourceLimits",
    "Scope",
    "SourceFile",
    "Span",
    "Symbol",
    "const_eval",
    "elaborate",
    "format_literal",
    "parse",
    "parse_literal",
    "preprocess",
    "tokenize",
    "write_design",
    "write_expr",
    "write_module",
    "write_stmt",
]
