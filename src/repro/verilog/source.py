"""Source-text bookkeeping for the Verilog front-end.

A :class:`SourceFile` wraps raw Verilog text and provides line/column
resolution; a :class:`Span` points at a region of a file and is attached
to every token, AST node and diagnostic so that error messages can print
``file.v:12`` locations the way iverilog and Quartus do.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SourceFile:
    """A named piece of Verilog source text.

    The name is what appears in diagnostics (``main.v:5: error: ...``);
    it does not have to exist on disk.
    """

    name: str
    text: str
    _line_starts: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        starts = [0]
        for i, ch in enumerate(self.text):
            if ch == "\n":
                starts.append(i + 1)
        object.__setattr__(self, "_line_starts", tuple(starts))

    @property
    def num_lines(self) -> int:
        return len(self._line_starts)

    def line_col(self, offset: int) -> tuple[int, int]:
        """Return 1-based (line, column) for a character offset."""
        offset = max(0, min(offset, len(self.text)))
        line = bisect.bisect_right(self._line_starts, offset) - 1
        return line + 1, offset - self._line_starts[line] + 1

    def line_text(self, line: int) -> str:
        """Return the text of a 1-based line number, without the newline."""
        if not 1 <= line <= self.num_lines:
            return ""
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        if end == -1:
            end = len(self.text)
        return self.text[start:end]


@dataclass(frozen=True)
class Span:
    """A half-open [start, end) character range inside a source file."""

    file: SourceFile
    start: int
    end: int

    @property
    def line(self) -> int:
        return self.file.line_col(self.start)[0]

    @property
    def column(self) -> int:
        return self.file.line_col(self.start)[1]

    @property
    def text(self) -> str:
        return self.file.text[self.start : self.end]

    def to(self, other: "Span") -> "Span":
        """Smallest span covering both self and other (same file)."""
        return Span(self.file, min(self.start, other.start), max(self.end, other.end))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.file.name}:{self.line}"


def dummy_span(text: str = "", name: str = "<generated>") -> Span:
    """A span for synthesized constructs with no real source location."""
    f = SourceFile(name, text)
    return Span(f, 0, len(text))
