"""Token definitions for the Verilog lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .source import Span


class TokenKind(enum.Enum):
    IDENT = "identifier"
    SYSTEM_IDENT = "system identifier"  # $display, $signed, ...
    NUMBER = "number"  # any integer literal, incl. based literals
    REAL = "real number"
    STRING = "string"
    KEYWORD = "keyword"
    PUNCT = "punctuation"  # operators and delimiters
    EOF = "end of file"


#: Reserved words of the supported Verilog-2005 (+ small SystemVerilog) subset.
KEYWORDS: frozenset[str] = frozenset(
    """
    module endmodule input output inout wire reg logic integer int genvar real
    parameter localparam assign always always_comb always_ff always_latch
    initial begin end if else case casez casex endcase default for while
    repeat forever posedge negedge or and not function endfunction task
    endtask generate endgenerate signed unsigned deassign force release
    wait disable event
    """.split()
)

#: Multi-character punctuation, longest first so the lexer can greedily match.
MULTI_PUNCT: tuple[str, ...] = (
    "<<<=", ">>>=",
    "===", "!==", "<<<", ">>>", "<<=", ">>=", "<->",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "**",
    "~&", "~|", "~^", "^~", "+:", "-:", "++", "--", "+=", "-=", "*=", "/=",
    "->", "@*",
)

SINGLE_PUNCT: frozenset[str] = frozenset("+-*/%><!~&|^=?:;,.(){}[]@#")


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    span: Span

    def is_punct(self, value: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.value == value

    def is_keyword(self, value: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value == value

    def describe(self) -> str:
        """Human-readable rendering used in 'syntax error near X' messages."""
        if self.kind is TokenKind.EOF:
            return "end of file"
        return repr(self.value)
