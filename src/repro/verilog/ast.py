"""AST node definitions for the supported Verilog subset.

Nodes are plain dataclasses.  Every node carries a :class:`Span` so
that later stages (elaboration, simulation, the repair strategies) can
point diagnostics and edits back at concrete source locations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional, Union

from .source import Span

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    span: Span


@dataclass
class Number(Expr):
    """Integer literal.  ``bits``/``xmask`` encode 4-state: a bit position
    set in ``xmask`` is X (if the matching ``bits`` bit is 0) or Z (if 1).
    """

    bits: int
    xmask: int = 0
    width: Optional[int] = None  # None: unsized decimal literal
    signed: bool = False
    zmask_is_z: bool = False  # retained for round-tripping 'z literals

    @property
    def is_fully_known(self) -> bool:
        return self.xmask == 0


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class Select(Expr):
    """Single bit-select or memory word-select: ``base[index]``."""

    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class RangeSelect(Expr):
    """Constant part-select ``base[msb:lsb]``."""

    base: Expr = None  # type: ignore[assignment]
    msb: Expr = None  # type: ignore[assignment]
    lsb: Expr = None  # type: ignore[assignment]


@dataclass
class IndexedSelect(Expr):
    """Indexed part-select ``base[start +: width]`` / ``base[start -: width]``."""

    base: Expr = None  # type: ignore[assignment]
    start: Expr = None  # type: ignore[assignment]
    width: Expr = None  # type: ignore[assignment]
    ascending: bool = True


@dataclass
class Concat(Expr):
    parts: list[Expr] = field(default_factory=list)


@dataclass
class Replicate(Expr):
    count: Expr = None  # type: ignore[assignment]
    value: Concat = None  # type: ignore[assignment]


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]


@dataclass
class Ternary(Expr):
    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    other: Expr = None  # type: ignore[assignment]


@dataclass
class FuncCall(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class SystemCall(Expr):
    """``$signed(...)``, ``$unsigned(...)``, ``$clog2(...)`` ..."""

    name: str = ""
    args: list[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    span: Span


@dataclass
class NullStmt(Stmt):
    pass


@dataclass
class Block(Stmt):
    name: Optional[str] = None
    decls: list["NetDecl"] = field(default_factory=list)
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class ProcAssign(Stmt):
    """Procedural assignment, blocking (``=``) or nonblocking (``<=``)."""

    lvalue: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]
    blocking: bool = True


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    other: Optional[Stmt] = None


@dataclass
class CaseItem:
    labels: list[Expr]  # empty list means `default`
    body: Stmt


@dataclass
class Case(Stmt):
    kind: Literal["case", "casez", "casex"] = "case"
    subject: Expr = None  # type: ignore[assignment]
    items: list[CaseItem] = field(default_factory=list)


@dataclass
class For(Stmt):
    init: Optional[ProcAssign] = None
    cond: Optional[Expr] = None
    step: Optional[ProcAssign] = None
    body: Stmt = None  # type: ignore[assignment]
    #: Name declared inline (SystemVerilog ``for (int i = 0; ...)``).
    inline_decl: Optional[str] = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Repeat(Stmt):
    count: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class TaskCall(Stmt):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Module items
# ---------------------------------------------------------------------------

Direction = Literal["input", "output", "inout"]
NetKind = Literal["wire", "reg", "logic", "integer", "int", "genvar", "real"]


@dataclass
class Range:
    """Declared packed range ``[msb:lsb]`` (expressions, usually constant)."""

    msb: Expr
    lsb: Expr
    span: Span


@dataclass
class PortDecl:
    direction: Direction
    net_kind: NetKind  # wire unless declared reg/logic
    range: Optional[Range]
    name: str
    signed: bool
    span: Span
    #: True when the reg/logic keyword appeared explicitly.
    explicit_kind: bool = False


@dataclass
class NetDecl:
    net_kind: NetKind
    range: Optional[Range]
    name: str
    span: Span
    signed: bool = False
    #: Unpacked (memory) dimension, e.g. ``reg [7:0] mem [0:255]``.
    array_range: Optional[Range] = None
    init: Optional[Expr] = None


@dataclass
class ParamDecl:
    name: str
    value: Expr
    span: Span
    local: bool = False
    range: Optional[Range] = None


@dataclass
class ContinuousAssign:
    lvalue: Expr
    rhs: Expr
    span: Span


@dataclass
class SensItem:
    edge: Optional[Literal["posedge", "negedge"]]
    expr: Expr
    span: Span


@dataclass
class SensList:
    """``@*`` / ``@(*)`` is represented with ``star=True`` and no items."""

    items: list[SensItem]
    star: bool
    span: Span


@dataclass
class AlwaysBlock:
    kind: Literal["always", "always_comb", "always_ff", "always_latch"]
    sensitivity: Optional[SensList]
    body: Stmt
    span: Span


@dataclass
class InitialBlock:
    body: Stmt
    span: Span


@dataclass
class FunctionDecl:
    name: str
    range: Optional[Range]
    inputs: list[NetDecl]
    decls: list[NetDecl]
    body: Stmt
    span: Span
    signed: bool = False


@dataclass
class PortConnection:
    """``.name(expr)`` (named) or positional (``name is None``)."""

    name: Optional[str]
    expr: Optional[Expr]
    span: Span


@dataclass
class Instantiation:
    module_name: str
    instance_name: str
    connections: list[PortConnection]
    span: Span
    param_overrides: list[PortConnection] = field(default_factory=list)


@dataclass
class GenerateFor:
    """Module-level ``for`` over a genvar with a body of module items."""

    genvar: str
    init: Expr
    cond: Expr
    step: Expr
    label: Optional[str]
    items: list["ModuleItem"]
    span: Span


ModuleItem = Union[
    PortDecl,
    NetDecl,
    ParamDecl,
    ContinuousAssign,
    AlwaysBlock,
    InitialBlock,
    FunctionDecl,
    Instantiation,
    GenerateFor,
]


@dataclass
class Module:
    name: str
    ports: list[PortDecl]
    items: list[ModuleItem]
    span: Span
    #: Port declaration order (names), for positional connections.
    port_order: list[str] = field(default_factory=list)


@dataclass
class Design:
    """One or more modules from a single compilation unit."""

    modules: dict[str, Module] = field(default_factory=dict)
    #: Name of the module to treat as top (first declared by default).
    top: Optional[str] = None

    def top_module(self) -> Optional[Module]:
        if self.top is not None and self.top in self.modules:
            return self.modules[self.top]
        return next(iter(self.modules.values()), None)


def walk_exprs(expr: Expr):
    """Yield ``expr`` and all sub-expressions, depth-first."""
    yield expr
    children: list[Expr] = []
    if isinstance(expr, Select):
        children = [expr.base, expr.index]
    elif isinstance(expr, RangeSelect):
        children = [expr.base, expr.msb, expr.lsb]
    elif isinstance(expr, IndexedSelect):
        children = [expr.base, expr.start, expr.width]
    elif isinstance(expr, Concat):
        children = list(expr.parts)
    elif isinstance(expr, Replicate):
        children = [expr.count, expr.value]
    elif isinstance(expr, Unary):
        children = [expr.operand]
    elif isinstance(expr, Binary):
        children = [expr.lhs, expr.rhs]
    elif isinstance(expr, Ternary):
        children = [expr.cond, expr.then, expr.other]
    elif isinstance(expr, (FuncCall, SystemCall)):
        children = list(expr.args)
    for child in children:
        if child is not None:
            yield from walk_exprs(child)


def walk_stmts(stmt: Stmt):
    """Yield ``stmt`` and all nested statements, depth-first."""
    yield stmt
    children: list[Stmt] = []
    if isinstance(stmt, Block):
        children = list(stmt.stmts)
    elif isinstance(stmt, If):
        children = [stmt.then] + ([stmt.other] if stmt.other else [])
    elif isinstance(stmt, Case):
        children = [item.body for item in stmt.items]
    elif isinstance(stmt, For):
        children = [stmt.body]
    elif isinstance(stmt, (While, Repeat)):
        children = [stmt.body]
    for child in children:
        if child is not None:
            yield from walk_stmts(child)
