"""AST pretty-printer: turn parsed designs back into Verilog source.

Completes the front-end round trip (parse → transform → emit) used by
tooling that prefers AST-level edits over textual ones.  The output is
normalized (canonical spacing/indentation), so ``parse ∘ write`` is
idempotent: writing a freshly re-parsed output reproduces it exactly.
"""

from __future__ import annotations

from . import ast

_INDENT = "  "

#: Parenthesization precedence (mirror of the parser's table).
_PREC = {
    "||": 1, "&&": 2, "|": 3,
    "^": 4, "^~": 4, "~^": 4,
    "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
    "**": 11,
}
_TERNARY_PREC = 0
_UNARY_PREC = 12


def write_expr(expr: ast.Expr, parent_prec: int = -1) -> str:
    """Render an expression, parenthesizing by precedence."""
    text, prec = _expr(expr)
    if prec < parent_prec or (prec == parent_prec and prec in (_TERNARY_PREC,)):
        return f"({text})"
    return text


def _expr(expr: ast.Expr) -> tuple[str, int]:
    if isinstance(expr, ast.Number):
        return _number(expr), 100
    if isinstance(expr, ast.StringLit):
        return f'"{expr.value}"', 100
    if isinstance(expr, ast.Identifier):
        return expr.name, 100
    if isinstance(expr, ast.Select):
        return f"{write_expr(expr.base, 100)}[{write_expr(expr.index)}]", 100
    if isinstance(expr, ast.RangeSelect):
        return (
            f"{write_expr(expr.base, 100)}"
            f"[{write_expr(expr.msb)}:{write_expr(expr.lsb)}]",
            100,
        )
    if isinstance(expr, ast.IndexedSelect):
        op = "+:" if expr.ascending else "-:"
        return (
            f"{write_expr(expr.base, 100)}"
            f"[{write_expr(expr.start)} {op} {write_expr(expr.width)}]",
            100,
        )
    if isinstance(expr, ast.Concat):
        return "{" + ", ".join(write_expr(p) for p in expr.parts) + "}", 100
    if isinstance(expr, ast.Replicate):
        inner = ", ".join(write_expr(p) for p in expr.value.parts)
        return f"{{{write_expr(expr.count, 100)}{{{inner}}}}}", 100
    if isinstance(expr, ast.Unary):
        operand = write_expr(expr.operand, _UNARY_PREC)
        # Keep adjacent operator characters from fusing into a different
        # token: '-(-x)' must not become '--x', '&(&x)' not '&&x'.
        sep = " " if operand and operand[0] in "+-&|^~!<>=" else ""
        return f"{expr.op}{sep}{operand}", _UNARY_PREC
    if isinstance(expr, ast.Binary):
        prec = _PREC.get(expr.op, 1)
        lhs = write_expr(expr.lhs, prec)
        # Right operand needs strictly higher precedence for left-assoc
        # operators ('**' is right-assoc).
        rhs_prec = prec if expr.op == "**" else prec + 1
        rhs = write_expr(expr.rhs, rhs_prec)
        return f"{lhs} {expr.op} {rhs}", prec
    if isinstance(expr, ast.Ternary):
        return (
            f"{write_expr(expr.cond, _TERNARY_PREC + 1)} ? "
            f"{write_expr(expr.then, _TERNARY_PREC)} : "
            f"{write_expr(expr.other, _TERNARY_PREC)}",
            _TERNARY_PREC,
        )
    if isinstance(expr, (ast.FuncCall, ast.SystemCall)):
        args = ", ".join(write_expr(a) for a in expr.args)
        return f"{expr.name}({args})", 100
    raise TypeError(f"cannot write expression {type(expr).__name__}")


def _number(number: ast.Number) -> str:
    if number.width is None:
        return str(number.bits)
    if number.xmask == 0:
        if number.width <= 4 or number.bits < 10:
            return f"{number.width}'d{number.bits}"
        ndigits = (number.width + 3) // 4
        return f"{number.width}'h{number.bits:0{ndigits}x}"
    chars = []
    for i in reversed(range(number.width)):
        if (number.xmask >> i) & 1:
            chars.append("z" if (number.bits >> i) & 1 else "x")
        else:
            chars.append(str((number.bits >> i) & 1))
    return f"{number.width}'b{''.join(chars)}"


def _range(rng: ast.Range | None) -> str:
    if rng is None:
        return ""
    return f"[{write_expr(rng.msb)}:{write_expr(rng.lsb)}] "


def write_stmt(stmt: ast.Stmt, depth: int = 1) -> str:
    """Render a statement at the given indent depth."""
    pad = _INDENT * depth
    if isinstance(stmt, ast.NullStmt):
        return f"{pad};"
    if isinstance(stmt, ast.Block):
        label = f" : {stmt.name}" if stmt.name else ""
        lines = [f"{pad}begin{label}"]
        for decl in stmt.decls:
            lines.append(f"{pad}{_INDENT}{_net_decl_text(decl)}")
        for child in stmt.stmts:
            lines.append(write_stmt(child, depth + 1))
        lines.append(f"{pad}end")
        return "\n".join(lines)
    if isinstance(stmt, ast.ProcAssign):
        op = "=" if stmt.blocking else "<="
        return f"{pad}{write_expr(stmt.lvalue)} {op} {write_expr(stmt.rhs)};"
    if isinstance(stmt, ast.If):
        out = [f"{pad}if ({write_expr(stmt.cond)})", write_stmt(stmt.then, depth + 1)]
        if stmt.other is not None:
            out.append(f"{pad}else")
            out.append(write_stmt(stmt.other, depth + 1))
        return "\n".join(out)
    if isinstance(stmt, ast.Case):
        lines = [f"{pad}{stmt.kind} ({write_expr(stmt.subject)})"]
        for item in stmt.items:
            labels = (
                ", ".join(write_expr(l) for l in item.labels)
                if item.labels
                else "default"
            )
            lines.append(f"{pad}{_INDENT}{labels}:")
            lines.append(write_stmt(item.body, depth + 2))
        lines.append(f"{pad}endcase")
        return "\n".join(lines)
    if isinstance(stmt, ast.For):
        init = _inline_assign(stmt.init)
        if stmt.inline_decl is not None:
            init = f"int {init}"
        cond = write_expr(stmt.cond) if stmt.cond is not None else ""
        step = _inline_assign(stmt.step)
        return "\n".join([
            f"{pad}for ({init}; {cond}; {step})",
            write_stmt(stmt.body, depth + 1),
        ])
    if isinstance(stmt, ast.While):
        return "\n".join([
            f"{pad}while ({write_expr(stmt.cond)})",
            write_stmt(stmt.body, depth + 1),
        ])
    if isinstance(stmt, ast.Repeat):
        return "\n".join([
            f"{pad}repeat ({write_expr(stmt.count)})",
            write_stmt(stmt.body, depth + 1),
        ])
    if isinstance(stmt, ast.TaskCall):
        args = ", ".join(write_expr(a) for a in stmt.args)
        return f"{pad}{stmt.name}({args});" if stmt.args else f"{pad}{stmt.name};"
    raise TypeError(f"cannot write statement {type(stmt).__name__}")


def _inline_assign(assign: ast.ProcAssign | None) -> str:
    if assign is None:
        return ""
    return f"{write_expr(assign.lvalue)} = {write_expr(assign.rhs)}"


def _net_decl_text(decl: ast.NetDecl) -> str:
    signed = "signed " if decl.signed else ""
    array = ""
    if decl.array_range is not None:
        array = f" [{write_expr(decl.array_range.msb)}:{write_expr(decl.array_range.lsb)}]"
    init = f" = {write_expr(decl.init)}" if decl.init is not None else ""
    return f"{decl.net_kind} {signed}{_range(decl.range)}{decl.name}{array}{init};"


def _sensitivity(sens: ast.SensList | None) -> str:
    if sens is None:
        return ""
    if sens.star:
        return " @(*)"
    items = []
    for item in sens.items:
        edge = f"{item.edge} " if item.edge else ""
        items.append(f"{edge}{write_expr(item.expr)}")
    return f" @({' or '.join(items)})"


def write_module_item(item: ast.ModuleItem, depth: int = 0) -> str:
    """Render one module item (decl, assign, always, ...)."""
    pad = _INDENT * depth
    if isinstance(item, ast.NetDecl):
        return f"{pad}{_net_decl_text(item)}"
    if isinstance(item, ast.ParamDecl):
        keyword = "localparam" if item.local else "parameter"
        return f"{pad}{keyword} {_range(item.range)}{item.name} = {write_expr(item.value)};"
    if isinstance(item, ast.ContinuousAssign):
        return f"{pad}assign {write_expr(item.lvalue)} = {write_expr(item.rhs)};"
    if isinstance(item, ast.AlwaysBlock):
        return (
            f"{pad}{item.kind}{_sensitivity(item.sensitivity)}\n"
            + write_stmt(item.body, depth + 1)
        )
    if isinstance(item, ast.InitialBlock):
        return f"{pad}initial\n" + write_stmt(item.body, depth + 1)
    if isinstance(item, ast.FunctionDecl):
        signed = "signed " if item.signed else ""
        ports = ", ".join(
            f"input {_range(p.range)}{p.name}" for p in item.inputs
        )
        lines = [f"{pad}function {signed}{_range(item.range)}{item.name}({ports});"]
        for decl in item.decls:
            lines.append(f"{pad}{_INDENT}{_net_decl_text(decl)}")
        lines.append(write_stmt(item.body, depth + 1))
        lines.append(f"{pad}endfunction")
        return "\n".join(lines)
    if isinstance(item, ast.Instantiation):
        params = ""
        if item.param_overrides:
            inner = ", ".join(
                f".{c.name}({write_expr(c.expr)})" for c in item.param_overrides
            )
            params = f" #({inner})"
        conns = ", ".join(
            (f".{c.name}({write_expr(c.expr) if c.expr is not None else ''})"
             if c.name is not None else write_expr(c.expr))
            for c in item.connections
        )
        return f"{pad}{item.module_name}{params} {item.instance_name} ({conns});"
    if isinstance(item, ast.GenerateFor):
        label = f" : {item.label}" if item.label else ""
        lines = [
            f"{pad}generate",
            f"{pad}for ({item.genvar} = {write_expr(item.init)}; "
            f"{write_expr(item.cond)}; {item.genvar} = {write_expr(item.step)}) "
            f"begin{label}",
        ]
        for sub in item.items:
            lines.append(write_module_item(sub, depth + 1))
        lines.append(f"{pad}end")
        lines.append(f"{pad}endgenerate")
        return "\n".join(lines)
    raise TypeError(f"cannot write module item {type(item).__name__}")


def write_module(module: ast.Module) -> str:
    """Render a full module declaration."""
    from .parser import expand_siblings

    ports = []
    for port in module.ports:
        kind = f" {port.net_kind}" if port.explicit_kind else ""
        signed = " signed" if port.signed else ""
        rng = f" {_range(port.range).strip()}" if port.range else ""
        ports.append(f"{_INDENT}{port.direction}{kind}{signed}{rng} {port.name}")
    header = f"module {module.name} (\n" + ",\n".join(ports) + "\n);"
    body = [
        write_module_item(item)
        for item in expand_siblings(module.items)
        if not isinstance(item, ast.PortDecl)
    ]
    return "\n".join([header, *body, "endmodule"]) + "\n"


def write_design(design: ast.Design) -> str:
    """Render every module of a design."""
    return "\n".join(write_module(m) for m in design.modules.values())
