"""Staged compilation pipeline with session-scoped incremental reuse.

The agents' inner loop is dominated by recompiles of *nearly identical*
source: each ReAct iteration edits a few lines and (before this module)
re-ran the whole preprocess → lex → parse → elaborate chain from
scratch, because the whole-result :class:`~repro.runtime.CompileCache`
only helps on exact matches.  This module breaks the front-end into
explicit stages with content-addressed, immutable :class:`Artifact`\\ s
so the *unchanged prefix* of an edited source is reused:

* **preprocess** -- keyed by the raw text + include set; cheap, reruns
  on any edit, but its unchanged *output prefix* is what unlocks the
  downstream reuse.
* **lex** -- keyed by the preprocessed text.  On a miss, the session
  additionally *resumes* the previous compile's token stream: tokens
  that end comfortably inside the common prefix of the old and new text
  are kept verbatim and the lexer (which is stateless between tokens)
  restarts at the last kept token's end -- producing exactly the cold
  token list.
* **parse** -- keyed by the preprocessed text, computed *per module
  segment*: the token stream is split at every ``module`` keyword, and
  each segment is cached under a digest of the text up to the next
  boundary plus the parser state entering the segment (error count,
  recovery flag).  Editing module B therefore reuses module A's parse
  artifact.  A monitor (:class:`_SegmentParser`) detects any read past
  the segment boundary and refuses to cache such segments, so recovery
  paths that look ahead never produce context-dependent artifacts.
* **elaborate** -- keyed by the preprocessed text (whole design).
* **render** -- assembles the :class:`~repro.diagnostics.compiler.CompileResult`;
  actual log rendering stays lazy (and flavour switching on identical
  source is pure re-rendering: every analysis stage hits).
* **sim-lower** -- not run by the compile pipeline itself: the compiled
  simulation engine (:func:`repro.sim.compile.lowered_for`) hangs this
  sixth stage off **elaborate**'s output, caching each design's lowered
  closure tables in the active :class:`StageCache` under the design
  digest stamped by :func:`~repro.diagnostics.engine.DiagnosticEngine`.

Equivalence guarantee
---------------------

A :class:`CompileSession` compile is **bit-identical** to a cold
:func:`~repro.diagnostics.compiler.compile_source` run on the same
``(code, name, flavor, include_files, limits)``: same diagnostics (text,
codes, spans, order), same ``CompileResult`` fields, same rendered log.
The key arguments: stage budgets are disjoint per
:class:`~repro.verilog.limits.LimitTracker` kind, so per-stage fresh
trackers behave exactly like the cold run's shared tracker; segment
digests pin the entire text up to the boundary, so every reused span
resolves to identical offsets/lines/text; and any read past a boundary
taints the segment out of the cache.  The guarantee is continuously
prosecuted by the ``pipeline-differential`` fuzz invariant
(:mod:`repro.runtime.fuzz`) and by ``scripts/pipeline_diff.py`` over the
full dataset.
"""

from __future__ import annotations

import hashlib
import sys
import threading
from bisect import bisect_right
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Optional, Protocol

from ..diagnostics.codes import ErrorCategory
from ..diagnostics.diagnostic import Diagnostic
from ..diagnostics.engine import DiagnosticEngine
from . import ast
from .elaborate import elaborate
from .lexer import Lexer
from .limits import DEFAULT_LIMITS, LimitTracker, ResourceLimits
from .parser import Parser, _GiveUp
from .preprocessor import preprocess
from .source import SourceFile, Span
from .tokens import Token, TokenKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..diagnostics.compiler import CompileResult

#: Default LRU bound of a :class:`StageCache` (artifacts are small:
#: token tuples, per-module ASTs, diagnostic tuples).
DEFAULT_STAGE_MAXSIZE = 4096

#: How many characters past a token's end the lexer may have peeked
#: while producing it (longest multi-char operator probe is 4 chars from
#: the token start, number lookahead is 2 past the end).  A reused token
#: must end at least this far inside the old/new common prefix so its
#: bytes *and* every byte the lexer examined are identical.
_LEX_LOOKAHEAD = 4


def _digest(*parts: object) -> str:
    """SHA-256 content address over string-coerced ``parts``."""
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(str(part).encode("utf-8", "replace"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


def _common_prefix_len(a: str, b: str) -> int:
    """Length of the longest common prefix of ``a`` and ``b``."""
    n = min(len(a), len(b))
    if a[:n] == b[:n]:
        return n
    lo, hi = 0, n
    while lo < hi:  # binary search over C-speed slice compares
        mid = (lo + hi + 1) // 2
        if a[:mid] == b[:mid]:
            lo = mid
        else:
            hi = mid - 1
    return lo


@dataclass(frozen=True)
class Artifact:
    """One immutable stage output, content-addressed by ``key``.

    ``payload`` is a stage-specific tuple (token stream, parsed module +
    exit state, elaborated design, ...); ``diagnostics`` are the
    diagnostics that stage emitted while producing it, in emission
    order.  Artifacts are treated as immutable by every consumer -- the
    same contract the whole-result :class:`~repro.runtime.CompileCache`
    already relies on.
    """

    stage: str
    key: str
    payload: tuple
    diagnostics: tuple = ()


@dataclass
class PipelineStats:
    """Per-stage cache and timing counters for one :class:`StageCache`.

    Volatile telemetry, surfaced next to
    :class:`~repro.runtime.CacheStats` in ``run_full_report`` /
    ``rtlfixer report`` and deliberately excluded from ``to_json`` (a
    resumed run must stay byte-identical).
    """

    #: pipeline compiles that reported into this cache.
    compiles: int = 0
    #: stage name -> artifact-cache hits.
    hits: dict = field(default_factory=dict)
    #: stage name -> artifact-cache misses.
    misses: dict = field(default_factory=dict)
    #: LRU evictions across all stages.
    evictions: int = 0
    #: stage name -> cumulative wall-clock seconds spent in that stage.
    seconds: dict = field(default_factory=dict)
    #: lex runs that resumed the previous token stream mid-source.
    incremental_lexes: int = 0
    #: tokens reused verbatim by incremental lex runs.
    tokens_reused: int = 0
    #: module segments replayed from cached parse artifacts.
    segments_reused: int = 0
    #: module segments actually parsed (cache misses / uncacheable).
    segments_parsed: int = 0

    def note(self, stage: str, hit: bool) -> None:
        """Count one artifact lookup for ``stage``."""
        counter = self.hits if hit else self.misses
        counter[stage] = counter.get(stage, 0) + 1

    @property
    def lookups(self) -> int:
        """Total artifact-cache consultations across stages."""
        return sum(self.hits.values()) + sum(self.misses.values())

    @property
    def hit_rate(self) -> float:
        """Fraction of artifact lookups served from the cache."""
        total = self.lookups
        return sum(self.hits.values()) / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (used by ``run_full_report``)."""
        return {
            "compiles": self.compiles,
            "stage_hits": dict(sorted(self.hits.items())),
            "stage_misses": dict(sorted(self.misses.items())),
            "stage_seconds": {
                name: round(secs, 4)
                for name, secs in sorted(self.seconds.items())
            },
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
            "incremental_lexes": self.incremental_lexes,
            "tokens_reused": self.tokens_reused,
            "segments_reused": self.segments_reused,
            "segments_parsed": self.segments_parsed,
        }


class StageCache:
    """LRU-bounded, thread-safe store of per-stage :class:`Artifact`\\ s.

    The stage-granular sibling of the whole-result
    :class:`~repro.runtime.CompileCache`: entries are keyed by
    ``stage × content digest of that stage's inputs``, so *partially*
    changed sources still hit for their unchanged stages/segments.
    """

    def __init__(self, maxsize: int = DEFAULT_STAGE_MAXSIZE):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.stats = PipelineStats()
        self._entries: "OrderedDict[tuple[str, str], Artifact]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, stage: str, key: str) -> Optional[Artifact]:
        """The cached artifact for ``stage``/``key``, or None (counted)."""
        with self._lock:
            artifact = self._entries.get((stage, key))
            if artifact is not None:
                self._entries.move_to_end((stage, key))
            self.stats.note(stage, hit=artifact is not None)
            return artifact

    def put(self, artifact: Artifact) -> None:
        """Store ``artifact`` under its stage and key (LRU-evicting)."""
        with self._lock:
            self._entries[(artifact.stage, artifact.key)] = artifact
            self._entries.move_to_end((artifact.stage, artifact.key))
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def note_compile(self, timings: dict) -> None:
        """Fold one pipeline compile's per-stage wall times into stats."""
        with self._lock:
            self.stats.compiles += 1
            for stage, seconds in timings.items():
                self.stats.seconds[stage] = (
                    self.stats.seconds.get(stage, 0.0) + seconds
                )

    def clear(self) -> None:
        """Drop all artifacts and reset the statistics."""
        with self._lock:
            self._entries.clear()
            self.stats = PipelineStats()


#: The process-wide default stage cache, active from import time (the
#: same always-on posture as the whole-result compile cache).
DEFAULT_STAGE_CACHE = StageCache()

_active_stage_cache: Optional[StageCache] = DEFAULT_STAGE_CACHE
_active_stage_lock = threading.Lock()


def get_active_stage_cache() -> Optional[StageCache]:
    """The stage cache sessions currently consult (or None)."""
    return _active_stage_cache


def set_active_stage_cache(cache: Optional[StageCache]) -> Optional[StageCache]:
    """Install ``cache`` as the active stage cache; returns the previous
    one.  Pass ``None`` to disable stage-artifact caching entirely."""
    global _active_stage_cache
    with _active_stage_lock:
        previous = _active_stage_cache
        _active_stage_cache = cache
        return previous


@contextmanager
def use_stage_cache(
    cache: Optional[StageCache] = None, maxsize: int = DEFAULT_STAGE_MAXSIZE
) -> Iterator[StageCache]:
    """Scope a stage cache to a ``with`` block (fresh one by default);
    the previously active cache is restored on exit."""
    scoped = cache if cache is not None else StageCache(maxsize=maxsize)
    previous = set_active_stage_cache(scoped)
    try:
        yield scoped
    finally:
        set_active_stage_cache(previous)


@contextmanager
def no_stage_cache() -> Iterator[None]:
    """Disable stage-artifact caching inside a ``with`` block (cold-path
    measurements, differential testing)."""
    previous = set_active_stage_cache(None)
    try:
        yield
    finally:
        set_active_stage_cache(previous)


@dataclass
class PipelineState:
    """Mutable dataflow record threaded through the stages of one
    :class:`CompileSession` compile (inputs at the top, stage outputs
    filled in as the pipeline advances)."""

    raw: SourceFile
    flavor: str
    include_files: Optional[dict]
    engine: DiagnosticEngine
    cache: Optional[StageCache]
    #: preprocess output (the file every later stage consumes).
    pre: Optional[SourceFile] = None
    #: lex output (immutable token tuple).
    tokens: Optional[tuple] = None
    #: whether lexing emitted zero diagnostics (gates incremental reuse).
    lex_clean: bool = False
    #: parse output.
    design: Optional[ast.Design] = None
    #: elaborate output (None when the design is empty or broken).
    elaborated: Optional[Any] = None
    #: final assembled result (set by the render stage).
    result: Optional["CompileResult"] = None


class Stage(Protocol):
    """The pipeline stage protocol.

    A stage reads its inputs from the :class:`PipelineState`, reports
    every diagnostic into the state's
    :class:`~repro.diagnostics.engine.DiagnosticEngine` (stage
    provenance included), and writes its outputs back onto the state.
    Cacheable stages digest their inputs into an :class:`Artifact` key
    and consult the active :class:`StageCache` before computing.
    """

    name: str

    def run(self, session: "CompileSession", state: PipelineState) -> None:
        """Advance ``state`` through this stage."""
        ...


class _CachedStage:
    """Shared memoization skeleton for the cacheable analysis stages:
    digest inputs, consult the stage cache, compute on miss, apply."""

    name = "?"

    def key(self, session: "CompileSession", state: PipelineState) -> str:
        """Content address of this stage's inputs."""
        raise NotImplementedError

    def compute(
        self, session: "CompileSession", state: PipelineState, key: str
    ) -> Artifact:
        """Produce the artifact for a cache miss."""
        raise NotImplementedError

    def apply(
        self, session: "CompileSession", state: PipelineState, artifact: Artifact
    ) -> None:
        """Install a (fresh or cached) artifact into the state and
        forward its diagnostics to the engine."""
        raise NotImplementedError

    def run(self, session: "CompileSession", state: PipelineState) -> None:
        """Memoized stage execution under the engine's stage scope."""
        with state.engine.stage(self.name):
            key = self.key(session, state)
            artifact = None
            if state.cache is not None:
                artifact = state.cache.get(self.name, key)
            if artifact is None:
                artifact = self.compute(session, state, key)
                if state.cache is not None:
                    state.cache.put(artifact)
            self.apply(session, state, artifact)


class PreprocessStage(_CachedStage):
    """Directive expansion; keyed by the raw text and include set."""

    name = "preprocess"

    def key(self, session: "CompileSession", state: PipelineState) -> str:
        include_parts: list = []
        for inc_name in sorted(state.include_files or {}):
            include_parts.append(inc_name)
            include_parts.append(state.include_files[inc_name])
        return _digest(
            self.name, session.name, repr(session.limits), state.raw.text,
            *include_parts,
        )

    def compute(
        self, session: "CompileSession", state: PipelineState, key: str
    ) -> Artifact:
        """Run the preprocessor under a fresh tracker (its budget kinds
        -- macro/include -- are touched by no other stage, so a fresh
        tracker is indistinguishable from the cold run's shared one)."""
        pre = preprocess(
            state.raw,
            include_files=state.include_files,
            tracker=session.tracker(),
        )
        return Artifact(self.name, key, (pre.source,), tuple(pre.diagnostics))

    def apply(
        self, session: "CompileSession", state: PipelineState, artifact: Artifact
    ) -> None:
        """Publish the preprocessed source + diagnostics."""
        state.pre = artifact.payload[0]
        state.engine.extend(self.name, artifact.diagnostics)


class LexStage(_CachedStage):
    """Tokenization; keyed by the preprocessed text, with incremental
    resume against the session's previous compile on a miss."""

    name = "lex"

    def key(self, session: "CompileSession", state: PipelineState) -> str:
        return _digest(self.name, session.name, repr(session.limits), state.pre.text)

    def compute(
        self, session: "CompileSession", state: PipelineState, key: str
    ) -> Artifact:
        """Lex the preprocessed text, resuming mid-source when possible.

        Reuse requires the previous lex to have been diagnostic-free and
        each kept token to end ``_LEX_LOOKAHEAD`` characters inside the
        old/new common prefix -- then its bytes *and* every byte the
        lexer peeked at are identical, so keeping it verbatim and
        restarting the (stateless-between-tokens) lexer at its end
        reproduces the cold token stream exactly.  The token budget is
        pre-charged for kept tokens so exhaustion behaves cold-identically.
        """
        pre = state.pre
        memo = session._memo
        if memo is not None and memo.lex_clean and len(memo.tokens) > 1:
            prefix_len = _common_prefix_len(memo.pre_text, pre.text)
            kept = 0
            for token in memo.tokens:
                if (
                    token.kind is TokenKind.EOF
                    or token.span.end + _LEX_LOOKAHEAD > prefix_len
                ):
                    break
                kept += 1
            if kept:
                tracker = session.tracker()
                sink: list[Diagnostic] = []
                # Cold lexing charges one token-budget unit per token,
                # kept ones included; pre-charge them.  (This cannot
                # exhaust: the previous clean lex charged at least as
                # much under the same limits.)
                if tracker.charge("tokens", kept):
                    resume_at = memo.tokens[kept - 1].span.end
                    tail = Lexer(
                        pre, sink, tracker=tracker, start=resume_at
                    ).tokenize()
                    if state.cache is not None:
                        state.cache.stats.incremental_lexes += 1
                        state.cache.stats.tokens_reused += kept
                    return Artifact(
                        self.name, key,
                        (memo.tokens[:kept] + tuple(tail),), tuple(sink),
                    )
        sink = []
        tokens = tuple(Lexer(pre, sink, tracker=session.tracker()).tokenize())
        return Artifact(self.name, key, (tokens,), tuple(sink))

    def apply(
        self, session: "CompileSession", state: PipelineState, artifact: Artifact
    ) -> None:
        """Publish the token stream + lex diagnostics."""
        state.tokens = artifact.payload[0]
        state.lex_clean = not artifact.diagnostics
        state.engine.extend(self.name, artifact.diagnostics)


class ParseStage(_CachedStage):
    """Parsing; whole-design artifact keyed by the preprocessed text,
    computed per module segment with prefix-digest segment caching."""

    name = "parse"

    def key(self, session: "CompileSession", state: PipelineState) -> str:
        return _digest(self.name, session.name, repr(session.limits), state.pre.text)

    def compute(
        self, session: "CompileSession", state: PipelineState, key: str
    ) -> Artifact:
        """Replicate ``Parser.parse_design`` with per-segment caching.

        The token stream is segmented at every ``module`` keyword.  A
        segment's cache key digests: its start index, its boundary
        index, the parser state entering it (error count + recovery
        flag) and the *entire text up to the boundary token* -- equal
        digests therefore imply identical token prefixes (absolute
        positions included), so a cached segment's exit state and module
        AST splice in exactly.  Segments that read past their boundary
        (detected by :class:`_SegmentParser`) or that run to EOF are
        computed exactly and never cached.  Duplicate-module handling
        and the give-up ceiling run in this driver, outside the
        artifacts, exactly as the cold parser does.
        """
        tokens = state.tokens
        cache = state.cache
        text = state.pre.text
        sink: list[Diagnostic] = []
        parser = _SegmentParser(tokens, sink, session.tracker())
        design = ast.Design()
        boundaries = [
            index
            for index, token in enumerate(tokens)
            if token.kind is TokenKind.KEYWORD and token.value == "module"
        ]
        try:
            while not parser.at_eof():
                if not parser.cur.is_keyword("module"):
                    parser.syntax_near()
                    parser.advance()
                    continue
                seg_start = parser.pos
                nxt = bisect_right(boundaries, seg_start)
                boundary = boundaries[nxt] if nxt < len(boundaries) else None
                seg_key = None
                if boundary is not None and cache is not None:
                    prefix = text[: tokens[boundary].span.start]
                    seg_key = _digest(
                        "parse.segment", session.name, repr(session.limits),
                        seg_start, boundary, parser._error_count,
                        parser._just_recovered,
                        hashlib.sha256(
                            prefix.encode("utf-8", "replace")
                        ).hexdigest(),
                    )
                    hit = cache.get("parse.segment", seg_key)
                    if hit is not None:
                        module, end_pos, errors_out, recovered_out, gave_up = (
                            hit.payload
                        )
                        sink.extend(hit.diagnostics)
                        parser.pos = end_pos
                        parser._error_count = errors_out
                        parser._just_recovered = recovered_out
                        cache.stats.segments_reused += 1
                        if gave_up:
                            raise _GiveUp()
                        self._install(design, module, parser)
                        continue
                watermark = len(sink)
                parser.begin_segment(boundary)
                module = None
                gave_up = False
                try:
                    module = parser.parse_module()
                except _GiveUp:
                    gave_up = True
                touched = parser.end_segment()
                if seg_key is not None and not touched:
                    cache.put(
                        Artifact(
                            "parse.segment", seg_key,
                            (
                                module, parser.pos, parser._error_count,
                                parser._just_recovered, gave_up,
                            ),
                            tuple(sink[watermark:]),
                        )
                    )
                if cache is not None:
                    cache.stats.segments_parsed += 1
                if gave_up:
                    raise _GiveUp()
                self._install(design, module, parser)
        except _GiveUp:
            pass
        return Artifact(self.name, key, (design,), tuple(sink))

    @staticmethod
    def _install(design: ast.Design, module: ast.Module, parser: Parser) -> None:
        """Add a parsed module to the design, duplicate-checked exactly
        like ``Parser.parse_design`` (the duplicate diagnostic counts
        toward the parser's give-up ceiling)."""
        if module.name not in design.modules:
            design.modules[module.name] = module
            if design.top is None:
                design.top = module.name
        else:
            parser.error(
                ErrorCategory.DUPLICATE_DECL, module.span,
                name=module.name, what="module",
            )

    def apply(
        self, session: "CompileSession", state: PipelineState, artifact: Artifact
    ) -> None:
        """Publish the design + parse diagnostics."""
        state.design = artifact.payload[0]
        state.engine.extend(self.name, artifact.diagnostics)


class ElaborateStage(_CachedStage):
    """Elaboration; whole-design artifact keyed by the preprocessed text.
    Skipped (with the cold path's empty-design diagnostic) when parsing
    produced no modules."""

    name = "elaborate"

    def key(self, session: "CompileSession", state: PipelineState) -> str:
        return _digest(self.name, session.name, repr(session.limits), state.pre.text)

    def compute(
        self, session: "CompileSession", state: PipelineState, key: str
    ) -> Artifact:
        """Elaborate the parsed design under a fresh tracker (instance/
        statement budgets are exclusive to this stage)."""
        sink: list[Diagnostic] = []
        elaborated = elaborate(state.design, sink, tracker=session.tracker())
        return Artifact(self.name, key, (elaborated,), tuple(sink))

    def apply(
        self, session: "CompileSession", state: PipelineState, artifact: Artifact
    ) -> None:
        """Publish the elaborated design + elaboration diagnostics."""
        state.elaborated = artifact.payload[0]
        state.engine.extend(self.name, artifact.diagnostics)

    def run(self, session: "CompileSession", state: PipelineState) -> None:
        """Run elaboration, or emit the empty-design diagnostic exactly
        as the cold path does when no module parsed."""
        if not state.design.modules:
            if state.engine.empty:
                state.engine.emit(
                    "parse",
                    Diagnostic(
                        ErrorCategory.SYNTAX_NEAR, None, {"near": "empty design"}
                    ),
                )
            return
        super().run(session, state)


class RenderStage:
    """Result assembly.  Log rendering itself stays lazy on
    :class:`~repro.diagnostics.compiler.CompileResult` (flavour
    switching over identical analysis artifacts is pure re-rendering)."""

    name = "render"

    def run(self, session: "CompileSession", state: PipelineState) -> None:
        """Assemble the final deduplicated result from the engine."""
        with state.engine.stage(self.name):
            state.result = state.engine.result(
                state.pre, state.flavor,
                design=state.design, elaborated=state.elaborated,
            )


class _SegmentParser(Parser):
    """A :class:`Parser` instrumented with a segment-boundary monitor.

    While a segment is active, any *effective* token access at an index
    strictly beyond the boundary marks the segment as *touched* (context-
    dependent) and its artifact is not cached.  Reading the boundary
    token itself is safe: the segment digest pins the entire text before
    it, so in any replay context the boundary token is the same
    ``module`` keyword at the same offset.
    """

    def __init__(self, tokens, sink, tracker):
        super().__init__(list(tokens), sink, tracker=tracker)
        self._boundary = sys.maxsize
        self._touched = False

    def begin_segment(self, boundary: Optional[int]) -> None:
        """Arm the monitor for a segment ending at token ``boundary``
        (None = EOF segment: everything is in-bounds but uncacheable)."""
        self._boundary = boundary if boundary is not None else sys.maxsize
        self._touched = False

    def end_segment(self) -> bool:
        """Disarm the monitor; True if the segment read past its boundary."""
        touched = self._touched
        self._boundary = sys.maxsize
        return touched

    @property
    def cur(self) -> Token:
        """The current token (monitored)."""
        if self.pos > self._boundary:
            self._touched = True
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        """Lookahead (monitored at the clamped effective index)."""
        idx = min(self.pos + offset, len(self.tokens) - 1)
        if idx > self._boundary:
            self._touched = True
        return self.tokens[idx]


@dataclass(frozen=True)
class _SessionMemo:
    """What a session remembers from its previous successful compile to
    enable mid-source lex resumption."""

    pre_text: str
    tokens: tuple
    lex_clean: bool


class CompileSession:
    """A stateful compile pipeline an agent holds across iterations.

    Each :meth:`compile` runs the staged pipeline, consulting the active
    :class:`StageCache` for per-stage artifacts and the session's own
    memory of the previous token stream for incremental lexing.  Results
    are bit-identical to cold
    :func:`~repro.diagnostics.compiler.compile_source` runs -- the
    session is purely an accelerator (see the module docstring for the
    equivalence argument).  Thread-safe; crash/limit escalation flows
    through the same :class:`~repro.diagnostics.engine.DiagnosticEngine`
    boundary as the cold path.
    """

    def __init__(
        self, name: str = "main.v", limits: Optional[ResourceLimits] = None
    ):
        self.name = name
        #: Budgets for every compile (normalized like ``compile_source``).
        self.limits = limits if limits is not None else DEFAULT_LIMITS
        self._lock = threading.RLock()
        self._memo: Optional[_SessionMemo] = None
        self._stages: tuple = (
            PreprocessStage(), LexStage(), ParseStage(), ElaborateStage(),
            RenderStage(),
        )

    def tracker(self) -> LimitTracker:
        """A fresh per-stage tracker over this session's limits."""
        return LimitTracker(limits=self.limits)

    def reset(self) -> None:
        """Forget the previous compile (disables the next incremental lex)."""
        with self._lock:
            self._memo = None

    def compile(
        self,
        code: str,
        flavor: str = "iverilog",
        include_files: Optional[dict] = None,
    ) -> "CompileResult":
        """Compile ``code`` through the staged pipeline.

        Same never-crash boundary as ``compile_source``: cooperative
        ``ResourceLimitExceeded`` unwinds become RESOURCE_LIMIT
        diagnostics, anything else becomes an INTERNAL diagnostic on a
        ``crashed=True`` result (and drops the session's warm state --
        a failed pipeline leaves nothing trustworthy to resume from).
        """
        with self._lock:
            cache = get_active_stage_cache()
            engine = DiagnosticEngine()
            state = PipelineState(
                raw=SourceFile(self.name, code), flavor=flavor,
                include_files=include_files, engine=engine, cache=cache,
            )
            head = Span(state.raw, 0, min(1, len(code))) if code else None
            try:
                result = self._run(state)
            except Exception as exc:
                self._memo = None
                from ..errors import ResourceLimitExceeded

                if isinstance(exc, ResourceLimitExceeded):
                    engine.limit_violation(exc, head)
                else:
                    engine.internal_error(exc, head)
                result = engine.result(state.raw, flavor)
            if cache is not None:
                cache.note_compile(engine.timings)
            return result

    def _run(self, state: PipelineState) -> "CompileResult":
        """Drive the stage list over ``state`` (the staged counterpart
        of the cold path's ``_run_pipeline``)."""
        engine = state.engine
        with engine.stage("driver"):
            tracker = self.tracker()
            if not tracker.charge(
                "source bytes", len(state.raw.text.encode("utf-8", "replace"))
            ):
                tracker.report_overflow(
                    "source bytes",
                    Span(state.raw, 0, 1) if state.raw.text else None,
                    engine.sink("driver"),
                )
                return engine.result(state.raw, state.flavor)
        for stage in self._stages:
            stage.run(self, state)
        self._memo = _SessionMemo(
            pre_text=state.pre.text, tokens=state.tokens,
            lex_clean=state.lex_clean,
        )
        return state.result


def result_fingerprint(result: "CompileResult") -> tuple:
    """A canonical, directly-comparable projection of a CompileResult.

    Covers everything the bit-identical equivalence guarantee promises:
    the rendered log, ok/crashed flags, source identity, and for every
    diagnostic its category, span (file name, offsets, line, covered
    text) and stringified args.  Used by the ``pipeline-differential``
    fuzz invariant and ``scripts/pipeline_diff.py`` to hold warm
    :class:`CompileSession` compiles against cold ``compile_source``.
    """

    def span_fp(span) -> Optional[tuple]:
        if span is None:
            return None
        return (span.file.name, span.start, span.end, span.line, span.text)

    return (
        result.flavor,
        result.ok,
        result.crashed,
        result.log,
        result.source.name,
        result.source.text,
        tuple(
            (
                diag.category.name,
                span_fp(diag.span),
                tuple(sorted((k, str(v)) for k, v in diag.args.items())),
                diag.severity.name,
            )
            for diag in result.diagnostics
        ),
        tuple(sorted(result.design.modules)) if result.design is not None else None,
        result.design.top if result.design is not None else None,
        tuple(sorted(result.elaborated.modules))
        if result.elaborated is not None
        else None,
    )
