"""Semantic elaboration of a parsed design.

Builds symbol tables with parameters resolved to constants, expands
``generate`` loops, and runs the semantic checks whose failures make up
the paper's error taxonomy:

* undeclared identifiers (incl. inside event expressions -- the Fig. 5
  ``posedge clk`` case);
* constant indices outside a vector's declared range, including indices
  that only become constant after unrolling ``for`` loops with static
  bounds (the Fig. 6 Conway-life failure case);
* invalid l-values (procedural assignment to a wire, any assignment to
  an input port, continuous assignment to a reg);
* duplicate declarations;
* port-connection mismatches on instantiations.

The result, :class:`ElabDesign`, is what the simulator consumes.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional

from ..diagnostics.codes import ErrorCategory
from ..diagnostics.diagnostic import Diagnostic, Severity
from . import ast
from .limits import LimitTracker
from .parser import expand_siblings
from .symbols import Scope, Symbol

_MAX_UNROLL = 4096


@dataclass
class PortInfo:
    name: str
    direction: str
    width: int
    msb: int
    lsb: int
    signed: bool = False


@dataclass
class ResolvedInstance:
    instance_name: str
    module_name: str
    #: port name -> connected expression (None = unconnected)
    port_map: dict[str, Optional[ast.Expr]]
    span: object = None
    #: parameter overrides (#(.W(8))), constant-evaluated.
    param_values: dict[str, int] = field(default_factory=dict)


@dataclass
class ElabModule:
    """A module after elaboration: resolved symbols and process lists."""

    name: str
    scope: Scope
    params: dict[str, int]
    ports: list[PortInfo]
    #: The AST this module was elaborated from (needed to re-elaborate
    #: with per-instance parameter overrides).
    source: Optional[ast.Module] = None
    assigns: list[ast.ContinuousAssign] = field(default_factory=list)
    always: list[ast.AlwaysBlock] = field(default_factory=list)
    initials: list[ast.InitialBlock] = field(default_factory=list)
    functions: dict[str, ast.FunctionDecl] = field(default_factory=dict)
    instances: list[ResolvedInstance] = field(default_factory=list)

    def symbol(self, name: str) -> Optional[Symbol]:
        return self.scope.lookup(name)


@dataclass
class ElabDesign:
    modules: dict[str, ElabModule] = field(default_factory=dict)
    top: Optional[str] = None
    #: Content digest of the preprocessed source this design was
    #: elaborated from; stamped by the diagnostic engine on error-free
    #: results only.  ``None`` means "identity unknown" and disables
    #: digest-keyed caching (compiled-simulator stage, verdict cache).
    digest: Optional[str] = None

    def top_module(self) -> Optional[ElabModule]:
        if self.top and self.top in self.modules:
            return self.modules[self.top]
        return next(iter(self.modules.values()), None)


# ---------------------------------------------------------------------------
# Constant expression evaluation
# ---------------------------------------------------------------------------


def const_eval(expr: ast.Expr, env: dict[str, int] | None = None) -> Optional[int]:
    """Evaluate a constant expression to a Python int, or None if it is
    not compile-time constant.  ``env`` supplies parameter / genvar /
    unrolled-loop-variable values."""
    env = env or {}
    if isinstance(expr, ast.Number):
        return expr.bits if expr.is_fully_known else None
    if isinstance(expr, ast.Identifier):
        return env.get(expr.name)
    if isinstance(expr, ast.Unary):
        val = const_eval(expr.operand, env)
        if val is None:
            return None
        return {
            "-": lambda v: -v,
            "+": lambda v: v,
            "!": lambda v: int(v == 0),
            "~": lambda v: ~v,
        }.get(expr.op, lambda v: None)(val)
    if isinstance(expr, ast.Binary):
        lhs = const_eval(expr.lhs, env)
        rhs = const_eval(expr.rhs, env)
        if lhs is None or rhs is None:
            return None
        try:
            return {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: a // b if b else None,
                "%": lambda a, b: a % b if b else None,
                "**": lambda a, b: a**b if b >= 0 else 0,
                "<<": lambda a, b: a << b,
                ">>": lambda a, b: a >> b,
                "<<<": lambda a, b: a << b,
                ">>>": lambda a, b: a >> b,
                "&": lambda a, b: a & b,
                "|": lambda a, b: a | b,
                "^": lambda a, b: a ^ b,
                "==": lambda a, b: int(a == b),
                "!=": lambda a, b: int(a != b),
                "<": lambda a, b: int(a < b),
                "<=": lambda a, b: int(a <= b),
                ">": lambda a, b: int(a > b),
                ">=": lambda a, b: int(a >= b),
                "&&": lambda a, b: int(bool(a) and bool(b)),
                "||": lambda a, b: int(bool(a) or bool(b)),
            }.get(expr.op, lambda a, b: None)(lhs, rhs)
        except (ValueError, OverflowError):
            return None
    if isinstance(expr, ast.Ternary):
        cond = const_eval(expr.cond, env)
        if cond is None:
            return None
        return const_eval(expr.then if cond else expr.other, env)
    if isinstance(expr, ast.SystemCall) and expr.name == "$clog2" and expr.args:
        val = const_eval(expr.args[0], env)
        if val is None or val <= 0:
            return None
        return max(0, (val - 1).bit_length())
    return None


# ---------------------------------------------------------------------------
# Elaborator
# ---------------------------------------------------------------------------


class Elaborator:
    """Walks a parsed design building ElabModules and running checks."""
    def __init__(
        self,
        design: ast.Design,
        sink: list[Diagnostic],
        tracker: LimitTracker | None = None,
    ):
        self.design = design
        self.sink = sink
        #: Resource budgets (statement / instance counts); a private
        #: default-limits tracker keeps elaboration bounded even when the
        #: caller did not supply one.
        self.tracker = tracker if tracker is not None else LimitTracker()

    def _over_budget(self, kind: str, span) -> bool:
        """Charge one unit of ``kind``; True (with a one-shot diagnostic)
        once the budget is exhausted."""
        if self.tracker.charge(kind):
            return False
        self.tracker.report_overflow(kind, span, self.sink)
        return True

    def error(self, category: ErrorCategory, span, **args: object) -> None:
        self.sink.append(Diagnostic(category, span, dict(args)))

    def elaborate(self) -> ElabDesign:
        out = ElabDesign(top=self.design.top)
        for name, module in self.design.modules.items():
            out.modules[name] = self._elaborate_module(module)
        self._check_instances(out)
        return out

    # -- module-level ----------------------------------------------------

    def _elaborate_module(
        self, module: ast.Module, overrides: dict[str, int] | None = None
    ) -> ElabModule:
        scope = Scope()
        params: dict[str, int] = dict(overrides or {})
        elab = ElabModule(
            name=module.name, scope=scope, params=params, ports=[], source=module
        )

        items = self._expand_generates(expand_siblings(module.items), params)

        # Pass 1: declarations.  Parameters go first -- port ranges may
        # depend on them (``#(parameter W = 8)(input [W-1:0] d, ...)``).
        for item in items:
            if isinstance(item, ast.ParamDecl):
                self._declare_param(scope, params, item)
        for port in module.ports:
            self._declare_port(scope, params, port, elab)
        for item in items:
            if isinstance(item, ast.NetDecl):
                self._declare_net(scope, params, item)
            elif isinstance(item, ast.FunctionDecl):
                self._declare_function(scope, params, item, elab)

        # Pass 2: collect processes and run checks.
        for item in items:
            if isinstance(item, ast.ContinuousAssign):
                elab.assigns.append(item)
                self._check_continuous_assign(elab, item)
            elif isinstance(item, ast.AlwaysBlock):
                elab.always.append(item)
                self._check_always(elab, item)
            elif isinstance(item, ast.InitialBlock):
                elab.initials.append(item)
                self._check_stmt(elab, item.body, Scope(parent=elab.scope), procedural=True)
            elif isinstance(item, ast.Instantiation):
                self._collect_instance(elab, item)
        # NetDecl initialisers behave like continuous assigns on wires.
        for item in items:
            if isinstance(item, ast.NetDecl) and item.init is not None:
                self._check_expr(elab, item.init, elab.scope)
                if item.net_kind == "wire":
                    span = item.span
                    elab.assigns.append(
                        ast.ContinuousAssign(
                            lvalue=ast.Identifier(span=span, name=item.name),
                            rhs=item.init, span=span,
                        )
                    )
        return elab

    def _expand_generates(self, items: list, params: dict[str, int]) -> list:
        """Unroll GenerateFor items by substituting the genvar."""
        # Parameters must be known before unrolling; do a quick pre-pass.
        pre_params: dict[str, int] = {}
        for item in items:
            if isinstance(item, ast.ParamDecl):
                value = const_eval(item.value, pre_params)
                if value is not None:
                    pre_params[item.name] = value
        out: list = []
        for item in items:
            if not isinstance(item, ast.GenerateFor):
                out.append(item)
                continue
            for gen in [item] + item.__dict__.get("_siblings", []):
                out.extend(self._unroll_generate(gen, pre_params))
        return out

    def _unroll_generate(self, gen: ast.GenerateFor, params: dict[str, int]) -> list:
        init = const_eval(gen.init, params)
        if init is None:
            self.error(ErrorCategory.SYNTAX_NEAR, gen.span, near="'generate'")
            return []
        value = init
        produced: list = []
        for _ in range(_MAX_UNROLL):
            env = dict(params)
            env[gen.genvar] = value
            cond = const_eval(gen.cond, env)
            if cond is None or not cond:
                break
            for item in gen.items:
                if self._over_budget("elaborated statements", gen.span):
                    return produced
                clone = copy.deepcopy(item)
                _substitute_ident(clone, gen.genvar, value)
                if isinstance(clone, ast.Instantiation):
                    clone.instance_name = f"{clone.instance_name}_{value}"
                produced.append(clone)
            step = const_eval(gen.step, env)
            if step is None:
                break
            value = step
        return produced

    # -- declarations ------------------------------------------------------

    def _declare_port(
        self, scope: Scope, params: dict[str, int],
        port: ast.PortDecl, elab: ElabModule,
    ) -> None:
        msb, lsb = self._resolve_range(port.range, params)
        symbol = Symbol(
            name=port.name, kind=port.net_kind, span=port.span,
            msb=msb, lsb=lsb, signed=port.signed, direction=port.direction,
        )
        if not scope.declare(symbol):
            self.error(ErrorCategory.DUPLICATE_DECL, port.span, name=port.name, what="port")
            return
        width = symbol.width
        elab.ports.append(
            PortInfo(
                name=port.name, direction=port.direction, width=width,
                msb=msb if msb is not None else width - 1,
                lsb=lsb if lsb is not None else 0,
                signed=port.signed,
            )
        )

    def _declare_param(self, scope: Scope, params: dict[str, int], item: ast.ParamDecl) -> None:
        # Instance overrides (pre-seeded into ``params``) beat defaults;
        # localparams are never overridable.
        if item.name in params and not item.local:
            value: Optional[int] = params[item.name]
        else:
            value = const_eval(item.value, params)
        symbol = Symbol(
            name=item.name, kind="parameter", span=item.span, value=value,
        )
        if not scope.declare(symbol):
            self.error(ErrorCategory.DUPLICATE_DECL, item.span, name=item.name, what="parameter")
            return
        if value is not None:
            params[item.name] = value

    def _declare_net(self, scope: Scope, params: dict[str, int], item: ast.NetDecl) -> None:
        msb, lsb = self._resolve_range(item.range, params)
        existing = scope.lookup(item.name)
        if existing is not None and existing.is_port:
            # Non-ANSI style: `output q; reg q;` upgrades the port kind.
            if existing.kind == "wire" and item.net_kind in ("reg", "logic", "integer"):
                existing.kind = item.net_kind
                if msb is not None and existing.msb is None:
                    existing.msb, existing.lsb = msb, lsb
                return
            self.error(ErrorCategory.DUPLICATE_DECL, item.span, name=item.name, what="net")
            return
        array = None
        if item.array_range is not None:
            a_msb, a_lsb = self._resolve_range(item.array_range, params)
            if a_msb is not None and a_lsb is not None:
                array = (min(a_msb, a_lsb), max(a_msb, a_lsb))
        symbol = Symbol(
            name=item.name, kind=item.net_kind, span=item.span,
            msb=msb, lsb=lsb,
            signed=item.signed or item.net_kind in ("integer", "int"),
            array=array,
        )
        if not scope.declare(symbol):
            self.error(ErrorCategory.DUPLICATE_DECL, item.span, name=item.name, what="net")

    def _declare_function(
        self, scope: Scope, params: dict[str, int],
        item: ast.FunctionDecl, elab: ElabModule,
    ) -> None:
        msb, lsb = self._resolve_range(item.range, params)
        symbol = Symbol(
            name=item.name, kind="function", span=item.span,
            msb=msb, lsb=lsb, signed=item.signed,
        )
        if not scope.declare(symbol):
            self.error(ErrorCategory.DUPLICATE_DECL, item.span, name=item.name, what="function")
            return
        elab.functions[item.name] = item
        fn_scope = scope.child()
        for decl in item.inputs + item.decls:
            d_msb, d_lsb = self._resolve_range(decl.range, params)
            fn_scope.declare(
                Symbol(name=decl.name, kind=decl.net_kind, span=decl.span,
                       msb=d_msb, lsb=d_lsb, signed=decl.signed)
            )
        # The function name is the implicit return variable.
        fn_scope.declare(
            Symbol(name=item.name, kind="reg", span=item.span, msb=msb, lsb=lsb)
        )
        stub = ElabModule(name=elab.name, scope=fn_scope, params=params, ports=[])
        stub.functions = elab.functions
        self._check_stmt(stub, item.body, fn_scope, procedural=True)

    def _resolve_range(
        self, rng: Optional[ast.Range], params: dict[str, int]
    ) -> tuple[Optional[int], Optional[int]]:
        if rng is None:
            return None, None
        msb = const_eval(rng.msb, params)
        lsb = const_eval(rng.lsb, params)
        return msb, lsb

    # -- checks ------------------------------------------------------------

    def _check_continuous_assign(self, elab: ElabModule, item: ast.ContinuousAssign) -> None:
        self._check_lvalue(elab, item.lvalue, elab.scope, procedural=False)
        self._check_expr(elab, item.rhs, elab.scope)
        self._warn_literal_truncation(elab, item.lvalue, item.rhs)

    def _warn_literal_truncation(
        self, elab: ElabModule, lvalue: ast.Expr, rhs: ast.Expr
    ) -> None:
        """Quartus-style warning: an explicitly-sized literal wider than
        its target gets silently truncated."""
        if not isinstance(rhs, ast.Number) or rhs.width is None:
            return
        if not isinstance(lvalue, ast.Identifier):
            return
        symbol = elab.scope.lookup(lvalue.name)
        if symbol is None or symbol.kind in ("parameter", "function"):
            return
        target = symbol.width
        if rhs.width > target:
            self.sink.append(
                Diagnostic(
                    ErrorCategory.WIDTH_TRUNCATION,
                    rhs.span,
                    {
                        "name": lvalue.name,
                        "from_width": rhs.width,
                        "to_width": target,
                    },
                    severity=Severity.WARNING,
                )
            )

    def _check_always(self, elab: ElabModule, item: ast.AlwaysBlock) -> None:
        if item.sensitivity is not None:
            for sens in item.sensitivity.items:
                self._check_event_expr(elab, sens)
        scope = Scope(parent=elab.scope)
        self._check_stmt(elab, item.body, scope, procedural=True)

    def _check_event_expr(self, elab: ElabModule, sens: ast.SensItem) -> None:
        for expr in ast.walk_exprs(sens.expr):
            if isinstance(expr, ast.Identifier) and expr.name != "_error_":
                if elab.scope.lookup(expr.name) is None:
                    self.error(
                        ErrorCategory.UNDECLARED_ID, expr.span,
                        name=expr.name, what="event",
                    )

    def _check_stmt(self, elab: ElabModule, stmt: ast.Stmt, scope: Scope, procedural: bool) -> None:
        if self._over_budget("elaborated statements", getattr(stmt, "span", None)):
            return
        if isinstance(stmt, ast.Block):
            inner = scope.child()
            for decl in stmt.decls:
                msb, lsb = self._resolve_range(decl.range, elab.params)
                if not inner.declare(
                    Symbol(name=decl.name, kind=decl.net_kind, span=decl.span, msb=msb, lsb=lsb)
                ):
                    self.error(ErrorCategory.DUPLICATE_DECL, decl.span, name=decl.name, what="net")
            for child in stmt.stmts:
                self._check_stmt(elab, child, inner, procedural)
        elif isinstance(stmt, ast.ProcAssign):
            self._check_lvalue(elab, stmt.lvalue, scope, procedural=procedural)
            self._check_expr(elab, stmt.rhs, scope)
            self._warn_literal_truncation(elab, stmt.lvalue, stmt.rhs)
        elif isinstance(stmt, ast.If):
            self._check_expr(elab, stmt.cond, scope)
            self._check_stmt(elab, stmt.then, scope, procedural)
            if stmt.other is not None:
                self._check_stmt(elab, stmt.other, scope, procedural)
        elif isinstance(stmt, ast.Case):
            self._check_expr(elab, stmt.subject, scope)
            for case_item in stmt.items:
                for lab in case_item.labels:
                    self._check_expr(elab, lab, scope)
                self._check_stmt(elab, case_item.body, scope, procedural)
        elif isinstance(stmt, ast.For):
            self._check_for(elab, stmt, scope, procedural)
        elif isinstance(stmt, (ast.While, ast.Repeat)):
            self._check_expr(elab, stmt.cond if isinstance(stmt, ast.While) else stmt.count, scope)
            self._check_stmt(elab, stmt.body, scope, procedural)
        elif isinstance(stmt, ast.TaskCall):
            for arg in stmt.args:
                if not isinstance(arg, ast.StringLit):
                    self._check_expr(elab, arg, scope)

    def _check_for(self, elab: ElabModule, stmt: ast.For, scope: Scope, procedural: bool) -> None:
        inner = scope
        if stmt.inline_decl is not None:
            inner = scope.child()
            inner.declare(
                Symbol(name=stmt.inline_decl, kind="int", span=stmt.span)
            )
        if stmt.init is not None:
            self._check_lvalue(elab, stmt.init.lvalue, inner, procedural=procedural)
            self._check_expr(elab, stmt.init.rhs, inner)
        if stmt.cond is not None:
            self._check_expr(elab, stmt.cond, inner)
        if stmt.step is not None:
            self._check_expr(elab, stmt.step.rhs, inner)
        self._check_stmt(elab, stmt.body, inner, procedural)
        self._check_unrolled_indices(elab, stmt, inner)

    def _check_unrolled_indices(self, elab: ElabModule, stmt: ast.For, scope: Scope) -> None:
        """Quartus-style synthesis check: unroll static loops (including
        nested ones, with composed environments) and verify every index
        expression that becomes constant (Fig. 6 case)."""
        budget = [_MAX_UNROLL]
        self._unroll_and_check(stmt, scope, dict(elab.params), set(), budget)

    def _unroll_and_check(
        self, stmt: ast.For, scope: Scope,
        env: dict[str, int], reported: set[int], budget: list[int],
    ) -> None:
        if stmt.init is None or stmt.cond is None or stmt.step is None:
            return
        if not isinstance(stmt.init.lvalue, ast.Identifier):
            return
        var = stmt.init.lvalue.name
        value = const_eval(stmt.init.rhs, env)
        if value is None:
            return
        while budget[0] > 0:
            budget[0] -= 1
            inner_env = dict(env)
            inner_env[var] = value
            cond = const_eval(stmt.cond, inner_env)
            if cond is None or not cond:
                return
            self._check_indices_in_env(stmt.body, scope, inner_env, reported, budget)
            nxt = const_eval(stmt.step.rhs, inner_env)
            if nxt is None or nxt == value:
                return
            value = nxt

    def _check_indices_in_env(
        self, stmt: ast.Stmt, scope: Scope,
        env: dict[str, int], reported: set[int], budget: list[int],
    ) -> None:
        if isinstance(stmt, ast.For):
            self._unroll_and_check(stmt, scope, env, reported, budget)
            return
        children: list[ast.Stmt] = []
        exprs: list[ast.Expr] = []
        if isinstance(stmt, ast.Block):
            children = list(stmt.stmts)
        elif isinstance(stmt, ast.If):
            exprs = [stmt.cond]
            children = [stmt.then] + ([stmt.other] if stmt.other else [])
        elif isinstance(stmt, ast.Case):
            children = [item.body for item in stmt.items]
        elif isinstance(stmt, (ast.While, ast.Repeat)):
            children = [stmt.body]
        elif isinstance(stmt, ast.ProcAssign):
            exprs = [stmt.lvalue, stmt.rhs]
        for root in exprs:
            for expr in ast.walk_exprs(root):
                if isinstance(expr, ast.Select) and id(expr) not in reported:
                    if self._select_out_of_range(expr, scope, env):
                        reported.add(id(expr))
        for child in children:
            if child is not None:
                self._check_indices_in_env(child, scope, env, reported, budget)

    def _select_out_of_range(
        self, expr: ast.Select, scope: Scope, env: dict[str, int]
    ) -> bool:
        if not isinstance(expr.base, ast.Identifier):
            return False
        symbol = scope.lookup(expr.base.name)
        if symbol is None or symbol.kind in ("parameter", "function"):
            return False
        index = const_eval(expr.index, env)
        if index is None:
            return False
        if symbol.array is not None:
            lo, hi = symbol.array
            in_range = lo <= index <= hi
        else:
            in_range = symbol.index_in_range(index)
        if in_range:
            return False
        self.error(
            ErrorCategory.INDEX_RANGE, expr.span,
            name=expr.base.name, index=index,
            range=symbol.range_str() or "[0:0]",
        )
        return True

    def _check_lvalue(self, elab: ElabModule, expr: ast.Expr, scope: Scope, procedural: bool) -> None:
        if isinstance(expr, ast.Concat):
            for part in expr.parts:
                self._check_lvalue(elab, part, scope, procedural)
            return
        base = expr
        while isinstance(base, (ast.Select, ast.RangeSelect, ast.IndexedSelect)):
            # Index sub-expressions are ordinary reads.
            if isinstance(base, ast.Select):
                self._check_expr(elab, base.index, scope)
            elif isinstance(base, ast.RangeSelect):
                self._check_expr(elab, base.msb, scope)
                self._check_expr(elab, base.lsb, scope)
            else:
                self._check_expr(elab, base.start, scope)
                self._check_expr(elab, base.width, scope)
            base = base.base
        if not isinstance(base, ast.Identifier) or base.name == "_error_":
            return
        symbol = scope.lookup(base.name)
        if symbol is None:
            self.error(ErrorCategory.UNDECLARED_ID, base.span, name=base.name, what="lvalue")
            return
        if symbol.direction == "input":
            self.error(
                ErrorCategory.INVALID_LVALUE, base.span,
                name=base.name, reason="input port",
            )
        elif procedural and not symbol.is_variable and symbol.kind != "parameter":
            self.error(
                ErrorCategory.INVALID_LVALUE, base.span,
                name=base.name, reason="wire in procedural block",
            )
        elif not procedural and symbol.is_variable and symbol.kind != "genvar":
            self.error(
                ErrorCategory.INVALID_LVALUE, base.span,
                name=base.name, reason="reg in continuous assignment",
            )
        elif symbol.kind == "parameter":
            self.error(
                ErrorCategory.INVALID_LVALUE, base.span,
                name=base.name, reason="parameter",
            )
        # Constant index checks on the l-value itself.
        self._check_static_selects(elab, expr, scope)

    def _check_expr(self, elab: ElabModule, expr: ast.Expr, scope: Scope) -> None:
        for node in ast.walk_exprs(expr):
            if isinstance(node, ast.Identifier) and node.name != "_error_":
                if scope.lookup(node.name) is None:
                    self.error(ErrorCategory.UNDECLARED_ID, node.span, name=node.name, what="signal")
            elif isinstance(node, ast.FuncCall):
                symbol = scope.lookup(node.name)
                if symbol is None:
                    self.error(ErrorCategory.UNDECLARED_ID, node.span, name=node.name, what="function")
                elif symbol.kind != "function":
                    self.error(ErrorCategory.SYNTAX_NEAR, node.span, near=f"'{node.name}('")
        self._check_static_selects(elab, expr, scope)

    def _check_static_selects(self, elab: ElabModule, expr: ast.Expr, scope: Scope) -> None:
        for node in ast.walk_exprs(expr):
            if isinstance(node, ast.Select):
                self._select_out_of_range(node, scope, elab.params)
            elif isinstance(node, ast.RangeSelect) and isinstance(node.base, ast.Identifier):
                symbol = scope.lookup(node.base.name)
                if symbol is None or not symbol.is_vector:
                    continue
                msb = const_eval(node.msb, elab.params)
                lsb = const_eval(node.lsb, elab.params)
                for index in (msb, lsb):
                    if index is not None and not symbol.index_in_range(index):
                        self.error(
                            ErrorCategory.INDEX_RANGE, node.span,
                            name=node.base.name, index=index,
                            range=symbol.range_str(),
                        )
                        break

    # -- instances ---------------------------------------------------------

    def _collect_instance(self, elab: ElabModule, item: ast.Instantiation) -> None:
        if self._over_budget("elaborated instances", item.span):
            return
        for conn in item.connections:
            if conn.expr is not None:
                self._check_expr(elab, conn.expr, elab.scope)
        elab.instances.append(
            ResolvedInstance(
                instance_name=item.instance_name,
                module_name=item.module_name,
                port_map={},
                span=item.span,
            )
        )
        # Defer port-name resolution to _check_instances (needs all modules).
        elab.instances[-1].__dict__["_raw"] = item

    def _check_instances(self, design: ElabDesign) -> None:
        for elab in design.modules.values():
            for inst in elab.instances:
                raw: ast.Instantiation = inst.__dict__.pop("_raw")
                target = design.modules.get(inst.module_name)
                if target is None:
                    self.error(
                        ErrorCategory.UNDECLARED_ID, raw.span,
                        name=inst.module_name, what="module",
                    )
                    continue
                for override in raw.param_overrides:
                    if override.name is None or override.expr is None:
                        continue
                    value = const_eval(override.expr, elab.params)
                    if value is not None:
                        inst.param_values[override.name] = value
                resolve_instance_ports(inst, raw, target, report=self.error)


def resolve_instance_ports(
    inst: ResolvedInstance,
    raw: ast.Instantiation,
    target: ElabModule,
    report=None,
) -> None:
    """Fill ``inst.port_map`` from raw connections against the target
    module's declared ports, reporting mismatches via ``report``."""
    port_names = [p.name for p in target.ports]
    named = any(c.name is not None for c in raw.connections)
    if named:
        for conn in raw.connections:
            if conn.name is None:
                continue
            if conn.name not in port_names:
                if report is not None:
                    report(
                        ErrorCategory.PORT_MISMATCH, conn.span,
                        port=conn.name, module=inst.module_name,
                    )
                continue
            inst.port_map[conn.name] = conn.expr
    else:
        if len(raw.connections) > len(port_names) and report is not None:
            report(
                ErrorCategory.PORT_MISMATCH, raw.span,
                port=f"#{len(raw.connections)}", module=inst.module_name,
            )
        for name, conn in zip(port_names, raw.connections):
            inst.port_map[name] = conn.expr


def specialize_module(
    design: ElabDesign, module_name: str, overrides: dict[str, int]
) -> ElabModule:
    """Re-elaborate a module with per-instance parameter overrides
    applied (``sub #(.W(8)) u1 (...)``)."""
    base = design.modules[module_name]
    if base.source is None:
        return base
    sink: list[Diagnostic] = []  # already validated at design elaboration
    elaborator = Elaborator(ast.Design(), sink)
    specialized = elaborator._elaborate_module(base.source, overrides)
    for inst in specialized.instances:
        raw = inst.__dict__.pop("_raw")
        for override in raw.param_overrides:
            if override.name is not None and override.expr is not None:
                value = const_eval(override.expr, specialized.params)
                if value is not None:
                    inst.param_values[override.name] = value
        target = design.modules.get(inst.module_name)
        if target is not None:
            resolve_instance_ports(inst, raw, target)
    return specialized


def _substitute_ident(node: object, name: str, value: int) -> None:
    """Replace Identifier(name) with a Number(value) throughout an AST
    fragment, in place.  Used when unrolling generate loops."""
    if isinstance(node, ast.Identifier):
        return  # handled by the parent via fields below
    if not hasattr(node, "__dict__"):
        return
    for field_name, field_value in list(vars(node).items()):
        if isinstance(field_value, ast.Identifier) and field_value.name == name:
            setattr(node, field_name, ast.Number(span=field_value.span, bits=value, width=32))
        elif isinstance(field_value, list):
            for i, element in enumerate(field_value):
                if isinstance(element, ast.Identifier) and element.name == name:
                    field_value[i] = ast.Number(span=element.span, bits=value, width=32)
                else:
                    _substitute_ident(element, name, value)
        elif hasattr(field_value, "__dict__"):
            _substitute_ident(field_value, name, value)


def elaborate(
    design: ast.Design,
    sink: list[Diagnostic] | None = None,
    tracker: LimitTracker | None = None,
) -> ElabDesign:
    """Elaborate a parsed design, reporting problems into ``sink``.

    ``tracker`` carries the statement/instance budgets; one with default
    limits is created when omitted so elaboration is always bounded.
    """
    return Elaborator(
        design, sink if sink is not None else [], tracker=tracker
    ).elaborate()
