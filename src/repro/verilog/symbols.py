"""Symbol table for elaboration and simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .source import Span


@dataclass
class Symbol:
    """A declared name inside a module (net, variable, parameter, ...)."""

    name: str
    kind: str  # wire | reg | logic | integer | int | genvar | real | parameter | function
    span: Span
    msb: Optional[int] = None
    lsb: Optional[int] = None
    signed: bool = False
    direction: Optional[str] = None  # input | output | inout for ports
    #: Unpacked array bounds (lo, hi) for memories, else None.
    array: Optional[tuple[int, int]] = None
    #: Constant value for parameters/localparams.
    value: Optional[int] = None

    @property
    def is_port(self) -> bool:
        return self.direction is not None

    @property
    def is_vector(self) -> bool:
        return self.msb is not None

    @property
    def width(self) -> int:
        if self.msb is not None and self.lsb is not None:
            return abs(self.msb - self.lsb) + 1
        if self.kind in ("integer", "int", "genvar", "parameter"):
            return 32
        return 1

    @property
    def is_variable(self) -> bool:
        """True for types assignable in procedural blocks."""
        return self.kind in ("reg", "logic", "integer", "int", "genvar", "real")

    def range_str(self) -> str:
        if self.msb is None:
            return ""
        return f"[{self.msb}:{self.lsb}]"

    def index_in_range(self, index: int) -> bool:
        if self.msb is None or self.lsb is None:
            return index == 0
        lo, hi = sorted((self.msb, self.lsb))
        return lo <= index <= hi


@dataclass
class Scope:
    """A lexical scope; functions and named blocks nest inside a module."""

    symbols: dict[str, Symbol] = field(default_factory=dict)
    parent: Optional["Scope"] = None

    def declare(self, symbol: Symbol) -> bool:
        """Add a symbol; returns False if the name already exists locally."""
        if symbol.name in self.symbols:
            return False
        self.symbols[symbol.name] = symbol
        return True

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None

    def child(self) -> "Scope":
        return Scope(parent=self)
