"""Resource limits for the compiler front-end.

The front-end parses *untrusted* input: every repair candidate an LLM
emits goes straight into the lexer → preprocessor → parser → elaborator
pipeline, and degenerate candidates (macro bombs, pathologically nested
expressions, megabytes of garbage) are a documented failure mode of LLM
repair loops.  :class:`ResourceLimits` bounds every dimension in which a
pathological input can consume unbounded work, and :class:`LimitTracker`
enforces those bounds *cooperatively* inside each pipeline stage: a
violation is reported as an ordinary
:class:`~repro.diagnostics.diagnostic.Diagnostic` (category
``RESOURCE_LIMIT``) and the stage stops cleanly -- the compiler never
crashes and never hangs, it just returns feedback.

Two presets ship with the library:

* :data:`DEFAULT_LIMITS` -- generous bounds that no legitimate
  VerilogEval-scale design comes near, but that still cap adversarial
  input well under a second of work;
* :data:`FUZZ_LIMITS` -- tight bounds used by the built-in fuzzer
  (:mod:`repro.runtime.fuzz`) so a thousand pathological inputs compile
  in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from ..diagnostics.codes import ErrorCategory
from ..diagnostics.diagnostic import Diagnostic
from ..errors import ResourceLimitExceeded
from .source import Span

#: Tracker budget kind -> the :class:`ResourceLimits` field that bounds it.
LIMIT_KINDS: dict[str, str] = {
    "source bytes": "max_source_bytes",
    "tokens": "max_tokens",
    "macro expansions": "max_macro_expansions",
    "macro nesting depth": "max_macro_depth",
    "include nesting depth": "max_include_depth",
    "parse nesting depth": "max_parse_depth",
    "elaborated instances": "max_elab_instances",
    "elaborated statements": "max_elab_statements",
    "settle passes": "max_settle_passes",
}


@dataclass(frozen=True)
class ResourceLimits:
    """Bounds on the work one compiler invocation may perform.

    Every field caps one dimension of pathological input; all of them
    are enforced cooperatively (diagnostic + clean stop, never an
    exception escaping the front-end).  The defaults are sized so that
    no legitimate design in the reproduction's corpus is affected while
    adversarial inputs are cut off in well under a second.
    """

    #: Maximum UTF-8 size of the source text; larger inputs are rejected
    #: before lexing with a single diagnostic.
    max_source_bytes: int = 1_048_576
    #: Maximum number of tokens the lexer will produce.
    max_tokens: int = 262_144
    #: Total macro expansions per preprocessor run (defends against
    #: exponential `define fan-out, the classic macro bomb).
    max_macro_expansions: int = 4_096
    #: Maximum depth of nested macro bodies (a cycle is caught earlier
    #: and reported as a recursive-macro diagnostic).
    max_macro_depth: int = 32
    #: Maximum `include nesting depth (defends against self-includes).
    max_include_depth: int = 8
    #: Maximum recursion depth of the parser (expression/statement
    #: nesting); bounds AST depth for every downstream consumer too.
    max_parse_depth: int = 160
    #: Maximum module instances the elaborator will resolve.
    max_elab_instances: int = 2_048
    #: Maximum statements the elaborator will check.
    max_elab_statements: int = 65_536
    #: Maximum delta-cycle passes the simulator runs while settling
    #: combinational logic each step; a design that keeps toggling past
    #: this bound is reported as an unsettled combinational loop
    #: (a :class:`~repro.errors.SimulationError` the testbench degrades
    #: into an ordinary FAIL verdict, never an escaping crash).  Part of
    #: ``repr(limits)`` and therefore of every compile-cache and
    #: simulation-verdict cache key.
    max_settle_passes: int = 200

    def __post_init__(self) -> None:
        for spec in fields(self):
            value = getattr(self, spec.name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{spec.name} must be a positive int, got {value!r}")

    def limit_for(self, kind: str) -> int:
        """The numeric bound for a tracker budget ``kind``."""
        return int(getattr(self, LIMIT_KINDS[kind]))


#: Production defaults: generous for real designs, hard wall for bombs.
DEFAULT_LIMITS = ResourceLimits()

#: Tight limits for fuzzing: each pathological input is cut off almost
#: immediately, so thousands of iterations stay fast.
FUZZ_LIMITS = ResourceLimits(
    max_source_bytes=16_384,
    max_tokens=4_096,
    max_macro_expansions=256,
    max_macro_depth=8,
    max_include_depth=4,
    max_parse_depth=64,
    max_elab_instances=64,
    max_elab_statements=1_024,
    max_settle_passes=64,
)


@dataclass
class LimitTracker:
    """Mutable per-compile budget enforcement for :class:`ResourceLimits`.

    Pipeline stages call :meth:`charge` for each unit of work in a
    budgeted dimension; the first over-budget charge flips the budget
    into *exhausted* state.  :meth:`diagnose` then reports the violation
    exactly once per kind (stages may keep probing after exhaustion
    without spamming the sink).
    """

    limits: ResourceLimits = field(default_factory=lambda: DEFAULT_LIMITS)
    #: kind -> units consumed so far.
    spent: dict[str, int] = field(default_factory=dict)
    #: kinds whose violation has already been reported.
    reported: set = field(default_factory=set)

    def charge(self, kind: str, amount: int = 1) -> bool:
        """Consume ``amount`` units of ``kind``; False once over budget."""
        used = self.spent.get(kind, 0) + amount
        self.spent[kind] = used
        return used <= self.limits.limit_for(kind)

    def within(self, kind: str, value: int) -> bool:
        """Check an absolute ``value`` (e.g. a depth) against the bound
        without consuming budget."""
        return value <= self.limits.limit_for(kind)

    def exhausted(self, kind: str) -> bool:
        """Whether ``kind`` has gone over budget."""
        return self.spent.get(kind, 0) > self.limits.limit_for(kind)

    def diagnose(self, kind: str, span: Span | None) -> Diagnostic | None:
        """The violation diagnostic for ``kind``, once; None thereafter."""
        if kind in self.reported:
            return None
        self.reported.add(kind)
        return Diagnostic(
            ErrorCategory.RESOURCE_LIMIT,
            span,
            {"what": kind, "limit": self.limits.limit_for(kind)},
        )

    def report_overflow(self, kind: str, span: Span | None, sink) -> None:
        """Report ``kind``'s violation into ``sink`` (once per kind).

        The one overflow-reporting path every stage shares: stages call
        this right after an over-budget :meth:`charge`/:meth:`within`
        instead of hand-rolling the ``diagnose``-then-append idiom, so
        there is no private limit path anywhere in the front-end.
        ``sink`` is any list-compatible diagnostic sink (including a
        :class:`~repro.diagnostics.engine.StageSink`).
        """
        diag = self.diagnose(kind, span)
        if diag is not None:
            sink.append(diag)

    def check_or_raise(self, kind: str, value: int) -> None:
        """Raise :class:`~repro.errors.ResourceLimitExceeded` when an
        absolute ``value`` breaks the bound for ``kind`` (used by stages
        that unwind via exception, e.g. nested include expansion)."""
        if not self.within(kind, value):
            raise ResourceLimitExceeded(kind, self.limits.limit_for(kind))
