"""Recursive-descent parser for the supported Verilog subset.

The parser is *error-tolerant*: syntax problems are reported as
diagnostics in the shared sink and parsing continues with local
recovery, so a single run reports multiple independent errors the way
iverilog and Quartus do.  The categories it distinguishes --
MISSING_SEMICOLON, UNBALANCED_BLOCK, C_STYLE_SYNTAX, EVENT_EXPR,
BAD_LITERAL and the generic SYNTAX_NEAR -- are exactly the syntactic
error classes exercised by the paper's debugging dataset.
"""

from __future__ import annotations

from ..diagnostics.codes import ErrorCategory
from ..diagnostics.diagnostic import Diagnostic
from . import ast
from .limits import LimitTracker
from .literal import parse_literal
from .source import SourceFile, Span
from .tokens import Token, TokenKind

#: Binary operator precedence, higher binds tighter.
_BINARY_PREC: dict[str, int] = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4, "^~": 4, "~^": 4,
    "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
    "**": 11,
}

_UNARY_OPS = frozenset(["!", "~", "&", "~&", "|", "~|", "^", "~^", "^~", "+", "-"])

_C_STYLE_OPS = frozenset(["++", "--", "+=", "-=", "*=", "/=", "<<=", ">>="])

_NET_KINDS = frozenset(["wire", "reg", "logic", "integer", "int", "genvar", "real"])

_MAX_ERRORS = 25


class _GiveUp(Exception):
    """Internal signal: too many cascading errors, abandon the parse."""


class Parser:
    """Parses a token stream into a :class:`repro.verilog.ast.Design`."""

    def __init__(
        self,
        tokens: list[Token],
        sink: list[Diagnostic],
        tracker: LimitTracker | None = None,
    ):
        self.tokens = tokens
        self.pos = 0
        self.sink = sink
        self._error_count = 0
        #: set True when recovery already reported at the current spot, to
        #: suppress duplicate diagnostics for the same token.
        self._just_recovered = False
        #: Resource budgets; a private tracker with default limits keeps
        #: deeply-nested input from blowing the Python stack even when the
        #: caller did not supply one.
        self.tracker = tracker if tracker is not None else LimitTracker()
        self._depth = 0

    # -- recursion guard ----------------------------------------------

    def _enter(self) -> None:
        """Charge one level of recursive-descent nesting.

        Statement and expression recursion both pass through here; when
        the ``max_parse_depth`` budget is exhausted (e.g. the 10k-deep
        parenthesis bomb) a single ``RESOURCE_LIMIT`` diagnostic is
        reported and the parse is abandoned via :class:`_GiveUp` --
        keeping well clear of Python's own recursion limit.
        """
        self._depth += 1
        if not self.tracker.within("parse nesting depth", self._depth):
            self.tracker.report_overflow(
                "parse nesting depth", self.cur.span, self.sink
            )
            raise _GiveUp()

    def _leave(self) -> None:
        self._depth -= 1

    # -- token helpers -------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        tok = self.cur
        if self.pos < len(self.tokens) - 1:
            self.pos += 1
        self._just_recovered = False
        return tok

    def at_eof(self) -> bool:
        return self.cur.kind is TokenKind.EOF

    def accept_punct(self, value: str) -> Token | None:
        if self.cur.is_punct(value):
            return self.advance()
        return None

    def accept_keyword(self, value: str) -> Token | None:
        if self.cur.is_keyword(value):
            return self.advance()
        return None

    # -- diagnostics ---------------------------------------------------

    def error(self, category: ErrorCategory, span: Span, **args: object) -> None:
        if self._error_count >= _MAX_ERRORS:
            raise _GiveUp()
        self._error_count += 1
        self.sink.append(Diagnostic(category, span, dict(args)))

    def syntax_near(self, token: Token | None = None) -> None:
        token = token or self.cur
        self.error(ErrorCategory.SYNTAX_NEAR, token.span, near=token.describe())

    def expect_punct(self, value: str) -> Token:
        tok = self.accept_punct(value)
        if tok is not None:
            return tok
        if value == ";":
            # A distinct, retrievable category: the most common slip.
            prev = self.tokens[max(0, self.pos - 1)]
            self.error(ErrorCategory.MISSING_SEMICOLON, prev.span, before=self.cur.describe())
            return prev
        if not self._just_recovered:
            self.syntax_near()
        self._just_recovered = True
        return self.cur

    def expect_keyword(self, value: str) -> Token:
        tok = self.accept_keyword(value)
        if tok is not None:
            return tok
        if value in ("end", "endmodule", "endcase", "endfunction", "endgenerate"):
            self.error(
                ErrorCategory.UNBALANCED_BLOCK, self.cur.span,
                expected=value, near=self.cur.describe(),
            )
        elif not self._just_recovered:
            self.syntax_near()
        self._just_recovered = True
        return self.cur

    def expect_ident(self) -> str:
        if self.cur.kind is TokenKind.IDENT:
            return self.advance().value
        if not self._just_recovered:
            self.syntax_near()
        self._just_recovered = True
        return "_error_"

    # -- entry point ----------------------------------------------------

    def parse_design(self) -> ast.Design:
        design = ast.Design()
        try:
            while not self.at_eof():
                if self.cur.is_keyword("module"):
                    module = self.parse_module()
                    if module.name not in design.modules:
                        design.modules[module.name] = module
                        if design.top is None:
                            design.top = module.name
                    else:
                        self.error(
                            ErrorCategory.DUPLICATE_DECL, module.span,
                            name=module.name, what="module",
                        )
                else:
                    self.syntax_near()
                    self.advance()
        except _GiveUp:
            pass
        return design

    # -- module ----------------------------------------------------------

    def parse_module(self) -> ast.Module:
        start = self.expect_keyword("module")
        name = self.expect_ident()
        ports: list[ast.PortDecl] = []
        port_order: list[str] = []
        items: list[ast.ModuleItem] = []

        if self.cur.is_punct("#"):
            self.advance()
            self.expect_punct("(")
            items.extend(self._parse_param_port_list())
        if self.accept_punct("("):
            ports, port_order = self._parse_port_list()
        self.expect_punct(";")

        while not self.at_eof() and not self.cur.is_keyword("endmodule"):
            if self.cur.is_keyword("module"):
                # A new module header before endmodule: missing endmodule.
                self.error(
                    ErrorCategory.UNBALANCED_BLOCK, self.cur.span,
                    expected="endmodule", near="'module'",
                )
                break
            before = self.pos
            item = self.parse_module_item(ports, port_order)
            if item is not None:
                items.append(item)
            if self.pos == before:
                self.syntax_near()
                self.advance()
        end = self.cur
        self.expect_keyword("endmodule")
        span = start.span.to(end.span)
        return ast.Module(name=name, ports=ports, items=items, span=span, port_order=port_order)

    def _parse_param_port_list(self) -> list[ast.ParamDecl]:
        params: list[ast.ParamDecl] = []
        while not self.at_eof() and not self.cur.is_punct(")"):
            self.accept_keyword("parameter")
            rng = self._parse_optional_range()
            name_tok = self.cur
            name = self.expect_ident()
            self.expect_punct("=")
            value = self.parse_expr()
            params.append(ast.ParamDecl(name=name, value=value, span=name_tok.span, range=rng))
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return params

    def _parse_port_list(self) -> tuple[list[ast.PortDecl], list[str]]:
        ports: list[ast.PortDecl] = []
        order: list[str] = []
        direction: str | None = None
        net_kind = "wire"
        explicit = False
        signed = False
        rng: ast.Range | None = None
        while not self.at_eof() and not self.cur.is_punct(")"):
            tok = self.cur
            if tok.kind is TokenKind.KEYWORD and tok.value in ("input", "output", "inout"):
                direction = tok.value
                net_kind, explicit, signed, rng = "wire", False, False, None
                self.advance()
                if self.cur.kind is TokenKind.KEYWORD and self.cur.value in _NET_KINDS:
                    net_kind = self.cur.value
                    explicit = True
                    self.advance()
                signed = self.accept_keyword("signed") is not None
                rng = self._parse_optional_range()
            elif tok.kind is TokenKind.IDENT:
                name = self.advance().value
                order.append(name)
                if direction is not None:
                    ports.append(
                        ast.PortDecl(
                            direction=direction, net_kind=net_kind, range=rng,  # type: ignore[arg-type]
                            name=name, signed=signed, span=tok.span, explicit_kind=explicit,
                        )
                    )
                if not self.accept_punct(","):
                    break
            else:
                self.syntax_near()
                self.advance()
        self.expect_punct(")")
        return ports, order

    # -- module items ------------------------------------------------------

    def parse_module_item(
        self, ports: list[ast.PortDecl], port_order: list[str]
    ) -> ast.ModuleItem | None:
        self._enter()
        try:
            return self._parse_module_item_inner(ports, port_order)
        finally:
            self._leave()

    def _parse_module_item_inner(
        self, ports: list[ast.PortDecl], port_order: list[str]
    ) -> ast.ModuleItem | None:
        tok = self.cur
        if tok.kind is TokenKind.KEYWORD:
            if tok.value in ("input", "output", "inout"):
                return self._parse_nonansi_port(ports, port_order)
            handler = {
                "assign": self._parse_continuous_assign,
                "always": self._parse_always,
                "always_comb": self._parse_always,
                "always_ff": self._parse_always,
                "always_latch": self._parse_always,
                "initial": self._parse_initial,
                "parameter": self._parse_param,
                "localparam": self._parse_param,
                "function": self._parse_function,
                "generate": self._parse_generate,
            }.get(tok.value)
            if handler is not None:
                return handler()
            if tok.value in _NET_KINDS:
                return self._parse_net_decl()
            self.syntax_near()
            self.advance()
            return None
        if tok.kind is TokenKind.IDENT:
            return self._parse_instantiation()
        if tok.is_punct(";"):
            self.advance()
            return None
        self.syntax_near()
        self.advance()
        return None

    def _parse_optional_range(self) -> ast.Range | None:
        if not self.cur.is_punct("["):
            return None
        start = self.advance()
        msb = self.parse_expr()
        self.expect_punct(":")
        lsb = self.parse_expr()
        end = self.cur
        self.expect_punct("]")
        return ast.Range(msb=msb, lsb=lsb, span=start.span.to(end.span))

    def _parse_nonansi_port(
        self, ports: list[ast.PortDecl], port_order: list[str]
    ) -> None:
        direction = self.advance().value
        net_kind = "wire"
        explicit = False
        if self.cur.kind is TokenKind.KEYWORD and self.cur.value in _NET_KINDS:
            net_kind = self.advance().value
            explicit = True
        signed = self.accept_keyword("signed") is not None
        rng = self._parse_optional_range()
        while True:
            tok = self.cur
            name = self.expect_ident()
            decl = ast.PortDecl(
                direction=direction, net_kind=net_kind, range=rng,  # type: ignore[arg-type]
                name=name, signed=signed, span=tok.span, explicit_kind=explicit,
            )
            existing = next((i for i, p in enumerate(ports) if p.name == name), None)
            if existing is not None:
                ports[existing] = decl
            else:
                ports.append(decl)
                if name not in port_order:
                    port_order.append(name)
            if not self.accept_punct(","):
                break
        self.expect_punct(";")
        return None

    def _parse_net_decl(self) -> ast.NetDecl | None:
        kind_tok = self.advance()
        signed = self.accept_keyword("signed") is not None
        rng = self._parse_optional_range()
        decls: list[ast.NetDecl] = []
        while True:
            tok = self.cur
            name = self.expect_ident()
            array_range = self._parse_optional_range()
            init = None
            if self.accept_punct("="):
                init = self.parse_expr()
            decls.append(
                ast.NetDecl(
                    net_kind=kind_tok.value, range=rng, name=name, span=tok.span,  # type: ignore[arg-type]
                    signed=signed, array_range=array_range, init=init,
                )
            )
            if not self.accept_punct(","):
                break
        self.expect_punct(";")
        if len(decls) == 1:
            return decls[0]
        # Represent multi-name declarations by chaining extras through a
        # synthetic container: caller expects a single item, so we return
        # the first and stash the rest as siblings.
        first = decls[0]
        first_extra = getattr(first, "_siblings", None)
        assert first_extra is None
        first.__dict__["_siblings"] = decls[1:]
        return first

    def _parse_param(self) -> ast.ParamDecl:
        local = self.advance().value == "localparam"
        rng = self._parse_optional_range()
        tok = self.cur
        name = self.expect_ident()
        self.expect_punct("=")
        value = self.parse_expr()
        extras: list[ast.ParamDecl] = []
        while self.accept_punct(","):
            etok = self.cur
            ename = self.expect_ident()
            self.expect_punct("=")
            evalue = self.parse_expr()
            extras.append(ast.ParamDecl(name=ename, value=evalue, span=etok.span, local=local, range=rng))
        self.expect_punct(";")
        decl = ast.ParamDecl(name=name, value=value, span=tok.span, local=local, range=rng)
        if extras:
            decl.__dict__["_siblings"] = extras
        return decl

    def _parse_continuous_assign(self) -> ast.ContinuousAssign:
        start = self.advance()  # 'assign'
        self._skip_delay()
        lvalue = self.parse_expr(lvalue=True)
        self.expect_punct("=")
        rhs = self.parse_expr()
        extras: list[ast.ContinuousAssign] = []
        while self.accept_punct(","):
            lv2 = self.parse_expr(lvalue=True)
            self.expect_punct("=")
            rhs2 = self.parse_expr()
            extras.append(ast.ContinuousAssign(lvalue=lv2, rhs=rhs2, span=start.span))
        self.expect_punct(";")
        item = ast.ContinuousAssign(lvalue=lvalue, rhs=rhs, span=start.span.to(rhs.span))
        if extras:
            item.__dict__["_siblings"] = extras
        return item

    def _skip_delay(self) -> None:
        if self.accept_punct("#"):
            if self.accept_punct("("):
                self.parse_expr()
                self.expect_punct(")")
            elif self.cur.kind in (TokenKind.NUMBER, TokenKind.REAL):
                self.advance()

    def _parse_always(self) -> ast.AlwaysBlock:
        kind_tok = self.advance()
        sens: ast.SensList | None = None
        if self.cur.is_punct("@") or self.cur.is_punct("@*"):
            sens = self._parse_sensitivity()
        elif kind_tok.value == "always":
            # A bare `always` without any event control is a simulation
            # infinite loop; flag it as a bad event expression.
            self.error(ErrorCategory.EVENT_EXPR, kind_tok.span, reason="missing event control")
        body = self.parse_stmt()
        return ast.AlwaysBlock(
            kind=kind_tok.value, sensitivity=sens, body=body,  # type: ignore[arg-type]
            span=kind_tok.span.to(body.span),
        )

    def _parse_sensitivity(self) -> ast.SensList:
        at = self.advance()
        if at.value == "@*":
            return ast.SensList(items=[], star=True, span=at.span)
        if self.accept_punct("*"):
            return ast.SensList(items=[], star=True, span=at.span)
        if not self.accept_punct("("):
            self.error(ErrorCategory.EVENT_EXPR, at.span, reason="expected '(' after '@'")
            return ast.SensList(items=[], star=True, span=at.span)
        if self.accept_punct("*"):
            self.expect_punct(")")
            return ast.SensList(items=[], star=True, span=at.span)
        items: list[ast.SensItem] = []
        if self.cur.is_punct(")"):
            self.error(ErrorCategory.EVENT_EXPR, at.span, reason="empty event control")
            self.advance()
            return ast.SensList(items=[], star=True, span=at.span)
        while True:
            edge = None
            tok = self.cur
            if tok.is_keyword("posedge") or tok.is_keyword("negedge"):
                edge = self.advance().value
                if self.cur.is_punct(")") or self.cur.is_keyword("or") or self.cur.is_punct(","):
                    self.error(
                        ErrorCategory.EVENT_EXPR, tok.span,
                        reason=f"missing expression after '{edge}'",
                    )
                    expr: ast.Expr = ast.Identifier(span=tok.span, name="_error_")
                else:
                    expr = self.parse_expr()
            else:
                expr = self.parse_expr()
            items.append(ast.SensItem(edge=edge, expr=expr, span=tok.span))  # type: ignore[arg-type]
            if self.accept_keyword("or") or self.accept_punct(","):
                continue
            break
        self.expect_punct(")")
        return ast.SensList(items=items, star=False, span=at.span)

    def _parse_initial(self) -> ast.InitialBlock:
        start = self.advance()
        body = self.parse_stmt()
        return ast.InitialBlock(body=body, span=start.span.to(body.span))

    def _parse_function(self) -> ast.FunctionDecl:
        start = self.advance()  # 'function'
        self.accept_keyword("automatic")
        signed = self.accept_keyword("signed") is not None
        rng = self._parse_optional_range()
        name = self.expect_ident()
        inputs: list[ast.NetDecl] = []
        if self.accept_punct("("):
            while not self.at_eof() and not self.cur.is_punct(")"):
                self.accept_keyword("input")
                in_signed = self.accept_keyword("signed") is not None
                in_rng = self._parse_optional_range()
                tok = self.cur
                in_name = self.expect_ident()
                inputs.append(
                    ast.NetDecl(net_kind="reg", range=in_rng, name=in_name,
                                span=tok.span, signed=in_signed)
                )
                if not self.accept_punct(","):
                    break
            self.expect_punct(")")
        self.expect_punct(";")
        decls: list[ast.NetDecl] = []
        while self.cur.kind is TokenKind.KEYWORD and self.cur.value in ("input", "reg", "integer", "int", "logic"):
            is_input = self.cur.value == "input"
            decl = self._parse_function_local()
            target = inputs if is_input else decls
            target.extend(decl)
        body = self.parse_stmt()
        self.expect_keyword("endfunction")
        return ast.FunctionDecl(
            name=name, range=rng, inputs=inputs, decls=decls, body=body,
            span=start.span.to(body.span), signed=signed,
        )

    def _parse_function_local(self) -> list[ast.NetDecl]:
        kind = self.advance().value
        if kind == "input":
            kind = "reg"
        signed = self.accept_keyword("signed") is not None
        rng = self._parse_optional_range()
        out: list[ast.NetDecl] = []
        while True:
            tok = self.cur
            name = self.expect_ident()
            out.append(ast.NetDecl(net_kind=kind, range=rng, name=name, span=tok.span, signed=signed))  # type: ignore[arg-type]
            if not self.accept_punct(","):
                break
        self.expect_punct(";")
        return out

    def _parse_generate(self) -> ast.GenerateFor | None:
        self.advance()  # 'generate'
        item: ast.GenerateFor | None = None
        while not self.at_eof() and not self.cur.is_keyword("endgenerate"):
            if self.cur.is_keyword("for"):
                gen = self._parse_generate_for()
                if item is None:
                    item = gen
                else:
                    item.__dict__.setdefault("_siblings", []).append(gen)
            elif self.cur.is_keyword("genvar"):
                self._parse_net_decl()
            else:
                self.syntax_near()
                self.advance()
        self.expect_keyword("endgenerate")
        return item

    def _parse_generate_for(self) -> ast.GenerateFor:
        start = self.advance()  # 'for'
        self.expect_punct("(")
        genvar = self.expect_ident()
        self.expect_punct("=")
        init = self.parse_expr()
        self.expect_punct(";")
        cond = self.parse_expr()
        self.expect_punct(";")
        self.expect_ident()
        self.expect_punct("=")
        step = self.parse_expr()
        self.expect_punct(")")
        label: str | None = None
        items: list[ast.ModuleItem] = []
        if self.accept_keyword("begin"):
            if self.accept_punct(":"):
                label = self.expect_ident()
            while not self.at_eof() and not self.cur.is_keyword("end"):
                before = self.pos
                item = self.parse_module_item([], [])
                if item is not None:
                    items.append(item)
                if self.pos == before:
                    self.syntax_near()
                    self.advance()
            self.expect_keyword("end")
        else:
            item = self.parse_module_item([], [])
            if item is not None:
                items.append(item)
        return ast.GenerateFor(
            genvar=genvar, init=init, cond=cond, step=step, label=label,
            items=items, span=start.span,
        )

    def _parse_instantiation(self) -> ast.Instantiation | None:
        module_tok = self.advance()
        param_overrides: list[ast.PortConnection] = []
        if self.accept_punct("#"):
            self.expect_punct("(")
            param_overrides = self._parse_connection_list()
        inst_tok = self.cur
        if inst_tok.kind is not TokenKind.IDENT:
            self.syntax_near()
            return None
        inst_name = self.advance().value
        self.expect_punct("(")
        connections = self._parse_connection_list()
        self.expect_punct(";")
        return ast.Instantiation(
            module_name=module_tok.value, instance_name=inst_name,
            connections=connections, span=module_tok.span.to(inst_tok.span),
            param_overrides=param_overrides,
        )

    def _parse_connection_list(self) -> list[ast.PortConnection]:
        conns: list[ast.PortConnection] = []
        while not self.at_eof() and not self.cur.is_punct(")"):
            tok = self.cur
            if self.accept_punct("."):
                name = self.expect_ident()
                self.expect_punct("(")
                expr = None if self.cur.is_punct(")") else self.parse_expr()
                self.expect_punct(")")
                conns.append(ast.PortConnection(name=name, expr=expr, span=tok.span))
            else:
                expr = self.parse_expr()
                conns.append(ast.PortConnection(name=None, expr=expr, span=tok.span))
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return conns

    # -- statements -----------------------------------------------------

    def parse_stmt(self) -> ast.Stmt:
        self._enter()
        try:
            return self._parse_stmt_inner()
        finally:
            self._leave()

    def _parse_stmt_inner(self) -> ast.Stmt:
        tok = self.cur
        if tok.is_keyword("begin"):
            return self._parse_block()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.value in ("case", "casez", "casex") and tok.kind is TokenKind.KEYWORD:
            return self._parse_case()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("repeat"):
            return self._parse_repeat()
        if tok.kind is TokenKind.SYSTEM_IDENT:
            return self._parse_task_call()
        if tok.is_punct(";"):
            self.advance()
            return ast.NullStmt(span=tok.span)
        if tok.is_punct("#") or tok.is_punct("@"):
            self._skip_timing_control()
            return self.parse_stmt()
        if tok.kind is TokenKind.IDENT or tok.is_punct("{"):
            return self._parse_assignment_stmt()
        self.syntax_near()
        self.advance()
        return ast.NullStmt(span=tok.span)

    def _skip_timing_control(self) -> None:
        if self.accept_punct("#"):
            if self.cur.kind in (TokenKind.NUMBER, TokenKind.REAL):
                self.advance()
            return
        if self.accept_punct("@"):
            if self.accept_punct("("):
                depth = 1
                while not self.at_eof() and depth:
                    if self.cur.is_punct("("):
                        depth += 1
                    elif self.cur.is_punct(")"):
                        depth -= 1
                    self.advance()
            elif self.cur.kind is TokenKind.IDENT:
                self.advance()

    def _parse_block(self) -> ast.Block:
        start = self.advance()  # 'begin'
        name: str | None = None
        if self.accept_punct(":"):
            name = self.expect_ident()
        decls: list[ast.NetDecl] = []
        stmts: list[ast.Stmt] = []
        while not self.at_eof() and not self.cur.is_keyword("end"):
            if self.cur.is_keyword("endmodule") or self.cur.is_keyword("endcase"):
                # begin-block left open
                self.error(
                    ErrorCategory.UNBALANCED_BLOCK, self.cur.span,
                    expected="end", near=self.cur.describe(),
                )
                span = start.span.to(self.cur.span)
                return ast.Block(span=span, name=name, decls=decls, stmts=stmts)
            if self.cur.kind is TokenKind.KEYWORD and self.cur.value in ("reg", "integer", "int", "logic"):
                decl = self._parse_net_decl()
                if decl is not None:
                    decls.append(decl)
                    decls.extend(decl.__dict__.get("_siblings", []))
                continue
            before = self.pos
            stmts.append(self.parse_stmt())
            if self.pos == before:
                self.advance()
        end = self.cur
        self.expect_keyword("end")
        if self.accept_punct(":"):
            self.expect_ident()
        return ast.Block(span=start.span.to(end.span), name=name, decls=decls, stmts=stmts)

    def _parse_if(self) -> ast.If:
        start = self.advance()
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        then = self.parse_stmt()
        other: ast.Stmt | None = None
        if self.accept_keyword("else"):
            other = self.parse_stmt()
        return ast.If(span=start.span.to(then.span), cond=cond, then=then, other=other)

    def _parse_case(self) -> ast.Case:
        start = self.advance()
        kind = start.value
        self.expect_punct("(")
        subject = self.parse_expr()
        self.expect_punct(")")
        items: list[ast.CaseItem] = []
        while not self.at_eof() and not self.cur.is_keyword("endcase"):
            if self.cur.is_keyword("endmodule"):
                self.error(
                    ErrorCategory.UNBALANCED_BLOCK, self.cur.span,
                    expected="endcase", near="'endmodule'",
                )
                break
            if self.accept_keyword("default"):
                self.accept_punct(":")
                items.append(ast.CaseItem(labels=[], body=self.parse_stmt()))
                continue
            labels = [self.parse_expr()]
            while self.accept_punct(","):
                labels.append(self.parse_expr())
            self.expect_punct(":")
            items.append(ast.CaseItem(labels=labels, body=self.parse_stmt()))
        self.expect_keyword("endcase")
        return ast.Case(span=start.span, kind=kind, subject=subject, items=items)  # type: ignore[arg-type]

    def _parse_for(self) -> ast.For:
        start = self.advance()
        self.expect_punct("(")
        inline_decl: str | None = None
        if self.cur.kind is TokenKind.KEYWORD and self.cur.value in ("int", "integer"):
            self.advance()
            inline_decl = self.cur.value if self.cur.kind is TokenKind.IDENT else None
        init = self._parse_for_assign()
        self.expect_punct(";")
        cond = self.parse_expr()
        self.expect_punct(";")
        step = self._parse_for_assign()
        self.expect_punct(")")
        body = self.parse_stmt()
        return ast.For(
            span=start.span.to(body.span), init=init, cond=cond, step=step,
            body=body, inline_decl=inline_decl,
        )

    def _parse_for_assign(self) -> ast.ProcAssign | None:
        if self.cur.is_punct(";") or self.cur.is_punct(")"):
            return None
        tok = self.cur
        lvalue = self.parse_expr(lvalue=True)
        if self.cur.kind is TokenKind.PUNCT and self.cur.value in _C_STYLE_OPS:
            return self._recover_c_style(lvalue)
        self.expect_punct("=")
        rhs = self.parse_expr()
        return ast.ProcAssign(span=tok.span.to(rhs.span), lvalue=lvalue, rhs=rhs, blocking=True)

    def _recover_c_style(self, lvalue: ast.Expr) -> ast.ProcAssign:
        """Report C-style ``i++`` / ``i += k`` and recover to Verilog form."""
        op_tok = self.advance()
        self.error(ErrorCategory.C_STYLE_SYNTAX, op_tok.span, op=op_tok.value)
        span = lvalue.span.to(op_tok.span)
        if op_tok.value in ("++", "--"):
            one = ast.Number(span=op_tok.span, bits=1, width=None)
            rhs: ast.Expr = ast.Binary(span=span, op=op_tok.value[0], lhs=lvalue, rhs=one)
        else:
            amount = self.parse_expr()
            rhs = ast.Binary(span=span, op=op_tok.value[0], lhs=lvalue, rhs=amount)
        return ast.ProcAssign(span=span, lvalue=lvalue, rhs=rhs, blocking=True)

    def _parse_while(self) -> ast.While:
        start = self.advance()
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        body = self.parse_stmt()
        return ast.While(span=start.span.to(body.span), cond=cond, body=body)

    def _parse_repeat(self) -> ast.Repeat:
        start = self.advance()
        self.expect_punct("(")
        count = self.parse_expr()
        self.expect_punct(")")
        body = self.parse_stmt()
        return ast.Repeat(span=start.span.to(body.span), count=count, body=body)

    def _parse_task_call(self) -> ast.TaskCall:
        tok = self.advance()
        args: list[ast.Expr] = []
        if self.accept_punct("("):
            while not self.at_eof() and not self.cur.is_punct(")"):
                args.append(self.parse_expr())
                if not self.accept_punct(","):
                    break
            self.expect_punct(")")
        self.expect_punct(";")
        return ast.TaskCall(span=tok.span, name=tok.value, args=args)

    def _parse_assignment_stmt(self) -> ast.Stmt:
        tok = self.cur
        lvalue = self.parse_expr(lvalue=True)
        if self.cur.kind is TokenKind.PUNCT and self.cur.value in _C_STYLE_OPS:
            stmt = self._recover_c_style(lvalue)
            self.expect_punct(";")
            return stmt
        blocking = True
        if self.accept_punct("<="):
            blocking = False
        elif not self.accept_punct("="):
            self.syntax_near()
            self.advance()
            return ast.NullStmt(span=tok.span)
        self._skip_delay()
        rhs = self.parse_expr()
        self.expect_punct(";")
        return ast.ProcAssign(
            span=tok.span.to(rhs.span), lvalue=lvalue, rhs=rhs, blocking=blocking
        )

    # -- expressions -----------------------------------------------------

    def parse_expr(self, lvalue: bool = False) -> ast.Expr:
        if lvalue:
            return self._parse_primary()
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        self._enter()
        try:
            cond = self._parse_binary(0)
            if self.accept_punct("?"):
                then = self._parse_ternary()
                self.expect_punct(":")
                other = self._parse_ternary()
                return ast.Ternary(
                    span=cond.span.to(other.span), cond=cond, then=then, other=other
                )
            return cond
        finally:
            self._leave()

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        self._enter()
        try:
            return self._parse_binary_inner(min_prec)
        finally:
            self._leave()

    def _parse_binary_inner(self, min_prec: int) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            tok = self.cur
            if tok.kind is not TokenKind.PUNCT:
                return lhs
            prec = _BINARY_PREC.get(tok.value)
            if prec is None or prec < min_prec:
                return lhs
            self.advance()
            # '**' is right-associative; everything else left.
            next_min = prec if tok.value == "**" else prec + 1
            rhs = self._parse_binary(next_min)
            lhs = ast.Binary(span=lhs.span.to(rhs.span), op=tok.value, lhs=lhs, rhs=rhs)

    def _parse_unary(self) -> ast.Expr:
        self._enter()
        try:
            tok = self.cur
            if tok.kind is TokenKind.PUNCT and tok.value in _UNARY_OPS:
                self.advance()
                operand = self._parse_unary()
                return ast.Unary(
                    span=tok.span.to(operand.span), op=tok.value, operand=operand
                )
            return self._parse_primary()
        finally:
            self._leave()

    def _parse_primary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind is TokenKind.NUMBER or tok.kind is TokenKind.REAL:
            self.advance()
            lit = parse_literal(tok.value)
            return ast.Number(
                span=tok.span, bits=lit.bits, xmask=lit.xmask,
                width=lit.width, signed=lit.signed,
            )
        if tok.kind is TokenKind.STRING:
            self.advance()
            return ast.StringLit(span=tok.span, value=tok.value.strip('"'))
        if tok.kind is TokenKind.SYSTEM_IDENT:
            self.advance()
            args: list[ast.Expr] = []
            if self.accept_punct("("):
                while not self.at_eof() and not self.cur.is_punct(")"):
                    args.append(self.parse_expr())
                    if not self.accept_punct(","):
                        break
                self.expect_punct(")")
            return ast.SystemCall(span=tok.span, name=tok.value, args=args)
        if tok.kind is TokenKind.IDENT:
            self.advance()
            if self.cur.is_punct("("):
                self.advance()
                args = []
                while not self.at_eof() and not self.cur.is_punct(")"):
                    args.append(self.parse_expr())
                    if not self.accept_punct(","):
                        break
                self.expect_punct(")")
                return ast.FuncCall(span=tok.span, name=tok.value, args=args)
            expr: ast.Expr = ast.Identifier(span=tok.span, name=tok.value)
            return self._parse_selects(expr)
        if tok.is_punct("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_punct(")")
            return self._parse_selects(inner)
        if tok.is_punct("{"):
            return self._parse_concat()
        self.syntax_near()
        self.advance()
        return ast.Number(span=tok.span, bits=0, width=1)

    def _parse_selects(self, base: ast.Expr) -> ast.Expr:
        while self.cur.is_punct("["):
            start = self.advance()
            first = self.parse_expr()
            if self.accept_punct(":"):
                lsb = self.parse_expr()
                end = self.cur
                self.expect_punct("]")
                base = ast.RangeSelect(
                    span=start.span.to(end.span), base=base, msb=first, lsb=lsb
                )
            elif self.cur.is_punct("+:") or self.cur.is_punct("-:"):
                ascending = self.advance().value == "+:"
                width = self.parse_expr()
                end = self.cur
                self.expect_punct("]")
                base = ast.IndexedSelect(
                    span=start.span.to(end.span), base=base, start=first,
                    width=width, ascending=ascending,
                )
            else:
                end = self.cur
                self.expect_punct("]")
                base = ast.Select(span=start.span.to(end.span), base=base, index=first)
        return base

    def _parse_concat(self) -> ast.Expr:
        start = self.advance()  # '{'
        first = self.parse_expr()
        if self.cur.is_punct("{"):
            # Replication {N{...}}
            self.advance()
            parts = [self.parse_expr()]
            while self.accept_punct(","):
                parts.append(self.parse_expr())
            self.expect_punct("}")
            inner = ast.Concat(span=start.span, parts=parts)
            end = self.cur
            self.expect_punct("}")
            return ast.Replicate(span=start.span.to(end.span), count=first, value=inner)
        parts = [first]
        while self.accept_punct(","):
            parts.append(self.parse_expr())
        end = self.cur
        self.expect_punct("}")
        return self._parse_selects(ast.Concat(span=start.span.to(end.span), parts=parts))


def parse(
    source: SourceFile,
    sink: list[Diagnostic] | None = None,
    tracker: LimitTracker | None = None,
) -> ast.Design:
    """Tokenize and parse ``source`` into a Design, collecting diagnostics.

    ``tracker`` carries the token and nesting-depth budgets; one with
    default limits is created when omitted so parsing is always bounded.
    """
    from .lexer import tokenize

    sink = sink if sink is not None else []
    tokens = tokenize(source, sink, tracker=tracker)
    return Parser(tokens, sink, tracker=tracker).parse_design()


def expand_siblings(items: list) -> list:
    """Flatten items that carry chained ``_siblings`` declarations."""
    out = []
    for item in items:
        out.append(item)
        out.extend(item.__dict__.get("_siblings", []) if hasattr(item, "__dict__") else [])
    return out
