"""Quartus-flavoured rendering of diagnostics.

Mirrors Quartus Prime's verbose style: stable numeric error tags,
complete sentences, and remediation hints.  This is the *high*
feedback-quality level in the paper's ablation (Table 1), and the tags
are what the RAG exact-match retriever keys on.
"""

from __future__ import annotations

from .codes import ErrorCategory, quartus_tag
from .diagnostic import Diagnostic, Severity, sort_key

_TEMPLATES: dict[ErrorCategory, str] = {
    ErrorCategory.UNDECLARED_ID: (
        'object "{name}" is not declared. Verify the object name is correct. '
        "If the name is correct, declare the object."
    ),
    ErrorCategory.INDEX_RANGE: (
        "index {index} cannot fall outside the declared range {range} "
        'for vector "{name}". Check the index expression and the vector declaration.'
    ),
    ErrorCategory.INVALID_LVALUE: (
        'object "{name}" on left-hand side of assignment must have a variable '
        "data type ({reason}). Declare the object as reg, or use a continuous "
        "assignment."
    ),
    ErrorCategory.SYNTAX_NEAR: (
        "syntax error near text {near}. Check for and fix any syntax errors "
        "that appear immediately before or at the specified keyword."
    ),
    ErrorCategory.BAD_LITERAL: (
        "malformed number literal {literal}. Specify digits that are legal "
        "for the declared radix and width."
    ),
    ErrorCategory.PORT_MISMATCH: (
        'port "{port}" does not exist in module "{module}". Verify the port '
        "name against the module declaration."
    ),
    ErrorCategory.DUPLICATE_DECL: (
        'name "{name}" has already been declared in the current scope '
        "({what}). Remove or rename the duplicate declaration."
    ),
    ErrorCategory.MISSING_SEMICOLON: (
        'missing ";" before {before}. Insert a semicolon at the end of the '
        "previous statement."
    ),
    ErrorCategory.UNBALANCED_BLOCK: (
        'expecting "{expected}" near {near}. Check that every begin, case '
        "and module has a matching {expected}."
    ),
    ErrorCategory.C_STYLE_SYNTAX: (
        'operator "{op}" is not supported in Verilog HDL. Use an explicit '
        "assignment such as i = i + 1 instead."
    ),
    ErrorCategory.EVENT_EXPR: (
        "invalid event control expression: {reason}. Provide a signal or "
        "edge expression in the sensitivity list."
    ),
    ErrorCategory.WIDTH_TRUNCATION: (
        'truncated value with size {from_width} to match size {to_width} '
        'of target "{name}"'
    ),
    ErrorCategory.RESOURCE_LIMIT: (
        "design exceeds the {what} limit ({limit}). Simplify the design "
        "or raise the corresponding resource limit."
    ),
    ErrorCategory.INTERNAL: (
        "{detail}. This is a defect in the compiler, not in the design; "
        "simplify the input to work around it."
    ),
}


class _Defaulting(dict):
    def __missing__(self, key: str) -> str:
        return "?"


def render_diagnostic(diag: Diagnostic) -> str:
    """Render one diagnostic as a Quartus log line."""
    tag = quartus_tag(diag.category)
    kind = "Warning" if diag.severity is Severity.WARNING else "Error"
    message = _TEMPLATES[diag.category].format_map(_Defaulting(diag.args))
    file_name = diag.file_name or "design.sv"
    line = diag.line or 0
    if diag.category is ErrorCategory.INTERNAL:
        # Mirrors the real tool's tagged internal-error report, which is
        # not phrased as a Verilog HDL diagnostic.
        return (
            f"Error ({tag}): Quartus Prime Analysis & Synthesis "
            f"encountered an internal error: {message} "
            f"File: /tmp/work/{file_name} Line: {line}"
        )
    return (
        f"{kind} ({tag}): Verilog HDL {kind.lower()} at {file_name}({line}): "
        f"{message} File: /tmp/work/{file_name} Line: {line}"
    )


def render(diagnostics: list[Diagnostic]) -> str:
    """Render a full compiler log in Quartus style."""
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    warnings = [d for d in diagnostics if d.severity is Severity.WARNING]
    if not errors:
        return ""
    lines = [render_diagnostic(d) for d in sorted(errors, key=sort_key)]
    lines.extend(render_diagnostic(d) for d in sorted(warnings, key=sort_key))
    lines.append(
        "Error: Quartus Prime Analysis & Synthesis was unsuccessful. "
        f"{len(errors)} error{'s' if len(errors) != 1 else ''}, "
        f"{len(warnings)} warning{'s' if len(warnings) != 1 else ''}"
    )
    return "\n".join(lines)
