"""Compiler diagnostics: error catalog, renderers, and the compile facade.

The two renderers reproduce the feedback-quality contrast at the heart
of the paper's ablation (Fig. 5): the same underlying analysis rendered
as a terse iverilog log or as a verbose, tagged Quartus log.
"""

from .codes import (
    CATALOG,
    IVERILOG_CATEGORIES,
    QUARTUS_CATEGORIES,
    QUARTUS_TAG_TO_CATEGORY,
    CategoryInfo,
    ErrorCategory,
    label,
    quartus_tag,
)
from .compiler import (
    SIMPLE_FEEDBACK,
    Compiler,
    CompilerFlavor,
    CompileResult,
    compile_source,
)
from .diagnostic import Diagnostic, Severity

__all__ = [
    "CATALOG",
    "CategoryInfo",
    "Compiler",
    "CompileResult",
    "CompilerFlavor",
    "Diagnostic",
    "ErrorCategory",
    "IVERILOG_CATEGORIES",
    "QUARTUS_CATEGORIES",
    "QUARTUS_TAG_TO_CATEGORY",
    "SIMPLE_FEEDBACK",
    "Severity",
    "compile_source",
    "label",
    "quartus_tag",
]
