"""iverilog-flavoured rendering of diagnostics.

Mirrors Icarus Verilog's terse style: ``file:line: error: message`` with
no error tags, no remediation hints, and -- for the categories the real
tool reports only as a bare ``syntax error`` -- deliberately ambiguous
output, including the famous ``I give up.`` line on unrecoverable parse
errors.  This is the *medium* feedback-quality level in the paper's
ablation (Table 1).
"""

from __future__ import annotations

from .codes import CATALOG, ErrorCategory
from .diagnostic import Diagnostic, Severity, sort_key


def render_diagnostic(diag: Diagnostic) -> list[str]:
    """Render one diagnostic as iverilog log line(s)."""
    loc = f"{diag.file_name}:{diag.line}" if diag.span else "<unknown>"
    cat = diag.category
    args = diag.args

    if cat is ErrorCategory.UNDECLARED_ID:
        name = args.get("name", "?")
        lines = [f"{loc}: error: Unable to bind wire/reg/memory `{name}' in `top_module'"]
        if args.get("what") == "event":
            lines.append(f"{loc}: error: Failed to evaluate event expression.")
        elif args.get("what") == "module":
            lines = [f"{loc}: error: Unknown module type: {name}"]
        return lines
    if cat is ErrorCategory.INDEX_RANGE:
        name = args.get("name", "?")
        index = args.get("index", "?")
        return [f"{loc}: error: Index {name}[{index}] is out of range."]
    if cat is ErrorCategory.INVALID_LVALUE:
        name = args.get("name", "?")
        return [f"{loc}: error: {name} is not a valid l-value in top_module."]
    if cat is ErrorCategory.BAD_LITERAL:
        literal = args.get("literal", "?")
        return [f"{loc}: error: Malformed number: {literal}"]
    if cat is ErrorCategory.PORT_MISMATCH:
        port = args.get("port", "?")
        module = args.get("module", "?")
        return [f"{loc}: error: port ``{port}'' is not a port of {module}."]
    if cat is ErrorCategory.DUPLICATE_DECL:
        name = args.get("name", "?")
        return [f"{loc}: error: `{name}' has already been declared in this scope."]
    if cat is ErrorCategory.RESOURCE_LIMIT:
        # iverilog's terse refusal style for inputs it will not chew on.
        what = args.get("what", "resource")
        limit = args.get("limit", "?")
        return [f"{loc}: sorry: {what} limit ({limit}) exceeded."]
    if cat is ErrorCategory.INTERNAL:
        # iverilog internal failures: a terse sorry/internal error pair.
        detail = args.get("detail", "unexpected condition")
        return [
            f"{loc}: internal error: {detail}",
            f"{loc}: sorry: please report this as a compiler bug.",
        ]
    if cat is ErrorCategory.SYNTAX_NEAR:
        return [f"{loc}: syntax error"]
    # MISSING_SEMICOLON, UNBALANCED_BLOCK, C_STYLE_SYNTAX, EVENT_EXPR:
    # iverilog does not distinguish these -- a bare syntax error.
    return [f"{loc}: syntax error"]


def render(diagnostics: list[Diagnostic]) -> str:
    """Render a full compiler log in iverilog style."""
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    warnings = [d for d in diagnostics if d.severity is Severity.WARNING]
    if not errors:
        return ""
    lines: list[str] = []
    give_up = False
    elaboration_errors = 0
    for diag in sorted(warnings, key=sort_key):
        loc = f"{diag.file_name}:{diag.line}" if diag.span else "<unknown>"
        name = diag.args.get("name", "?")
        lines.append(
            f"{loc}: warning: Extra digits given for sized value "
            f"assigned to {name}."
        )
    for diag in sorted(errors, key=sort_key):
        lines.extend(render_diagnostic(diag))
        if not CATALOG[diag.category].iverilog_distinct:
            give_up = True
        if diag.category in (
            ErrorCategory.UNDECLARED_ID,
            ErrorCategory.INDEX_RANGE,
            ErrorCategory.INVALID_LVALUE,
            ErrorCategory.PORT_MISMATCH,
        ):
            elaboration_errors += 1
    if give_up:
        lines.append("I give up.")
    elif elaboration_errors:
        lines.append(f"{elaboration_errors} error(s) during elaboration.")
    return "\n".join(lines)
