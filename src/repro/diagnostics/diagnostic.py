"""Diagnostic objects produced by the Verilog front-end.

A :class:`Diagnostic` is structured data (category + location + message
parameters); rendering to iverilog-flavoured or Quartus-flavoured text is
done by the style modules so the *same* underlying analysis can present
the two feedback-quality levels the paper ablates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .codes import ErrorCategory

if TYPE_CHECKING:  # runtime import would cycle through repro.verilog
    from ..verilog.source import Span


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One front-end finding.

    ``args`` holds message parameters keyed by name, e.g.
    ``{"name": "clk"}`` for an undeclared identifier or
    ``{"index": -17, "range": "[255:0]", "name": "q"}`` for an
    out-of-range index.  Renderers interpolate them into flavour-specific
    templates.
    """

    category: ErrorCategory
    span: "Span | None"
    args: dict[str, object] = field(default_factory=dict)
    severity: Severity = Severity.ERROR

    @property
    def line(self) -> int | None:
        return self.span.line if self.span is not None else None

    @property
    def file_name(self) -> str | None:
        return self.span.file.name if self.span is not None else None

    def arg(self, key: str, default: object = "") -> object:
        return self.args.get(key, default)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        loc = f"{self.file_name}:{self.line}: " if self.span else ""
        return f"{loc}{self.severity.value}: {self.category.value} {self.args}"


def sort_key(diag: Diagnostic) -> tuple[int, int]:
    """Sort diagnostics by source position (no-span ones last)."""
    if diag.span is None:
        return (1 << 30, 0)
    return (diag.span.start, diag.span.end)
