"""Compiler facade: source text in, diagnostics + rendered log out.

This is the tool the agents invoke.  The underlying analysis (lexer →
preprocessor → parser → elaborator) is identical for every flavour; the
flavour only controls how much *information* the rendered feedback
carries, which is precisely the variable the paper's feedback-quality
ablation manipulates:

* ``simple``   -- no compiler log at all, just a fixed instruction;
* ``iverilog`` -- terse logs, 7 distinguishable categories;
* ``quartus``  -- verbose tagged logs, all 11 categories + hints.

Two implementations produce :class:`CompileResult`:

* :func:`compile_source` -- the classic monolithic cold compile: one
  straight-line run of every stage, reporting into a single
  :class:`~repro.diagnostics.engine.DiagnosticEngine`.  It is the
  reference implementation the differential fuzzer holds the staged
  pipeline against.
* :class:`~repro.verilog.pipeline.CompileSession` -- the staged,
  artifact-cached, incrementally-recompiling pipeline the agents hold
  across iterations.  The :class:`Compiler` facade routes through it
  (behind the whole-result :class:`~repro.runtime.CompileCache`), and
  its results are bit-identical to :func:`compile_source` by contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Literal, Optional

from .codes import ErrorCategory
from .diagnostic import Diagnostic, Severity, sort_key
from .engine import SIMPLE_FEEDBACK, DiagnosticEngine, render_log

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle with
    # repro.verilog, whose modules import the diagnostics catalog.
    from ..verilog.ast import Design
    from ..verilog.elaborate import ElabDesign
    from ..verilog.limits import ResourceLimits
    from ..verilog.pipeline import CompileSession
    from ..verilog.source import SourceFile

CompilerFlavor = Literal["simple", "iverilog", "quartus"]

__all__ = [
    "CompilerFlavor",
    "SIMPLE_FEEDBACK",
    "CompileResult",
    "Compiler",
    "compile_source",
]


@dataclass
class CompileResult:
    """Outcome of one compiler invocation."""

    source: "SourceFile"
    flavor: CompilerFlavor
    diagnostics: list[Diagnostic] = field(default_factory=list)
    design: Optional["Design"] = None
    elaborated: Optional["ElabDesign"] = None
    #: True when the front-end hit an unexpected internal failure and
    #: the crash was converted into an ``INTERNAL`` diagnostic at the
    #: :func:`compile_source` boundary.  A crashed result is never
    #: ``ok`` -- agents treat it as (degraded) compiler feedback.
    crashed: bool = False

    @property
    def ok(self) -> bool:
        if self.crashed:
            return False
        return not any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def categories(self) -> list[ErrorCategory]:
        """Error categories present, in source order."""
        seen: list[ErrorCategory] = []
        for diag in sorted(self.errors, key=sort_key):
            if diag.category not in seen:
                seen.append(diag.category)
        return seen

    @property
    def log(self) -> str:
        """The feedback text an agent would see for this flavour."""
        return render_log(self)


class Compiler:
    """Reusable compiler with a fixed flavour, file name and limits.

    Holds a lazily-created :class:`~repro.verilog.pipeline.CompileSession`
    so repeated :meth:`compile` calls across agent iterations reuse
    unchanged stage artifacts (same preprocess output after a late edit,
    unchanged modules not re-parsed), and flavour switching re-renders
    cached artifacts instead of recompiling.  Results remain bit-identical
    to :func:`compile_source` -- the session is a pure accelerator.
    """

    def __init__(
        self,
        flavor: CompilerFlavor = "iverilog",
        file_name: str = "main.v",
        limits: "ResourceLimits | None" = None,
    ):
        if flavor not in ("simple", "iverilog", "quartus"):
            raise ValueError(f"unknown compiler flavor: {flavor!r}")
        self.flavor: CompilerFlavor = flavor
        self.file_name = file_name
        #: Resource budgets enforced on every compile (None = defaults).
        self.limits = limits
        self._session: Optional["CompileSession"] = None

    @property
    def session(self) -> "CompileSession":
        """This compiler's staged pipeline session (created on demand)."""
        if self._session is None:
            from ..verilog.pipeline import CompileSession

            self._session = CompileSession(
                name=self.file_name, limits=self.limits
            )
        return self._session

    def __getstate__(self) -> dict:
        """Pickle without the session (it holds a lock and warm state
        that is pure per-process acceleration, never part of identity)."""
        state = dict(self.__dict__)
        state["_session"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        """Restore from :meth:`__getstate__` (session recreated lazily)."""
        self.__dict__.update(state)

    def compile(self, code: str) -> CompileResult:
        """Compile ``code`` under this compiler's flavour and limits."""
        # Routed through the content-addressed whole-result cache first
        # (agents re-compile the same revision across repeated trials);
        # a miss computes via the incremental session instead of a cold
        # compile_source run.  (Deferred import: repro.runtime falls
        # back gracefully, avoiding a cycle.)
        from ..runtime.cache import cached_compile

        session = self.session
        return cached_compile(
            code,
            name=self.file_name,
            flavor=self.flavor,
            limits=self.limits,
            compute=lambda: session.compile(code, flavor=self.flavor),
        )


def compile_source(
    code: str,
    name: str = "main.v",
    flavor: CompilerFlavor = "iverilog",
    include_files: dict[str, str] | None = None,
    limits: "ResourceLimits | None" = None,
) -> CompileResult:
    """Run the full front-end over ``code`` and collect diagnostics.

    This is the library's *never-crash, never-hang* boundary: whatever
    the input, the result is a :class:`CompileResult` carrying
    diagnostics.  Resource budgets (``limits``, default
    :data:`~repro.verilog.limits.DEFAULT_LIMITS`) are enforced
    cooperatively inside every pipeline stage and violations surface as
    ``RESOURCE_LIMIT`` diagnostics; any *unexpected* exception is caught
    here and converted into an ``INTERNAL`` diagnostic on a result with
    ``crashed=True`` -- graceful degradation, not an abort.

    Every stage reports into one
    :class:`~repro.diagnostics.engine.DiagnosticEngine` (stage
    provenance, deduplication, RESOURCE_LIMIT/INTERNAL escalation).
    This function always compiles *cold* -- it is the monolithic
    reference implementation that the staged
    :class:`~repro.verilog.pipeline.CompileSession` is differentially
    fuzzed against.
    """
    from ..errors import ResourceLimitExceeded
    from ..verilog.limits import DEFAULT_LIMITS, LimitTracker
    from ..verilog.source import SourceFile, Span

    tracker = LimitTracker(limits=limits if limits is not None else DEFAULT_LIMITS)
    engine = DiagnosticEngine()
    raw = SourceFile(name, code)
    head = Span(raw, 0, min(1, len(code))) if code else None
    try:
        return _run_pipeline(raw, flavor, include_files, tracker, engine)
    except ResourceLimitExceeded as exc:
        # A stage unwound cooperatively: an ordinary limit diagnostic,
        # not a crash.
        engine.limit_violation(exc, head)
        return engine.result(raw, flavor)
    except Exception as exc:  # the catch-all crash boundary
        engine.internal_error(exc, head)
        return engine.result(raw, flavor)


def _run_pipeline(
    raw: "SourceFile",
    flavor: CompilerFlavor,
    include_files: dict[str, str] | None,
    tracker,
    engine: DiagnosticEngine,
) -> CompileResult:
    """The actual lexer -> preprocessor -> parser -> elaborator run."""
    from ..verilog.elaborate import ElabDesign, elaborate
    from ..verilog.lexer import tokenize
    from ..verilog.parser import Parser
    from ..verilog.preprocessor import preprocess
    from ..verilog.source import Span

    with engine.stage("driver"):
        if not tracker.charge(
            "source bytes", len(raw.text.encode("utf-8", "replace"))
        ):
            tracker.report_overflow(
                "source bytes",
                Span(raw, 0, 1) if raw.text else None,
                engine.sink("driver"),
            )
            return engine.result(raw, flavor)

    with engine.stage("preprocess"):
        pre = preprocess(raw, include_files=include_files, tracker=tracker)
        engine.extend("preprocess", pre.diagnostics)
    with engine.stage("lex"):
        tokens = tokenize(pre.source, engine.sink("lex"), tracker=tracker)
    with engine.stage("parse"):
        design = Parser(tokens, engine.sink("parse"), tracker=tracker).parse_design()
    elaborated: Optional[ElabDesign] = None
    if not design.modules:
        # No module parsed at all: report it once (unless an earlier
        # stage already produced an explanation).
        if engine.empty:
            engine.emit(
                "parse",
                Diagnostic(ErrorCategory.SYNTAX_NEAR, None, {"near": "empty design"}),
            )
    else:
        with engine.stage("elaborate"):
            elaborated = elaborate(design, engine.sink("elaborate"), tracker=tracker)
    return engine.result(pre.source, flavor, design=design, elaborated=elaborated)
