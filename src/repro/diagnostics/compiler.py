"""Compiler facade: source text in, diagnostics + rendered log out.

This is the tool the agents invoke.  The underlying analysis (lexer →
preprocessor → parser → elaborator) is identical for every flavour; the
flavour only controls how much *information* the rendered feedback
carries, which is precisely the variable the paper's feedback-quality
ablation manipulates:

* ``simple``   -- no compiler log at all, just a fixed instruction;
* ``iverilog`` -- terse logs, 7 distinguishable categories;
* ``quartus``  -- verbose tagged logs, all 11 categories + hints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Literal, Optional

from . import iverilog_style, quartus_style
from .codes import ErrorCategory
from .diagnostic import Diagnostic, Severity, sort_key

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle with
    # repro.verilog, whose modules import the diagnostics catalog.
    from ..verilog.ast import Design
    from ..verilog.elaborate import ElabDesign
    from ..verilog.limits import ResourceLimits
    from ..verilog.source import SourceFile

CompilerFlavor = Literal["simple", "iverilog", "quartus"]

#: The fixed instruction used as "feedback" at the lowest quality level
#: (paper §4.3.1: "Correct the syntax error in the code.").
SIMPLE_FEEDBACK = "Correct the syntax error in the code."


@dataclass
class CompileResult:
    """Outcome of one compiler invocation."""

    source: "SourceFile"
    flavor: CompilerFlavor
    diagnostics: list[Diagnostic] = field(default_factory=list)
    design: Optional["Design"] = None
    elaborated: Optional["ElabDesign"] = None
    #: True when the front-end hit an unexpected internal failure and
    #: the crash was converted into an ``INTERNAL`` diagnostic at the
    #: :func:`compile_source` boundary.  A crashed result is never
    #: ``ok`` -- agents treat it as (degraded) compiler feedback.
    crashed: bool = False

    @property
    def ok(self) -> bool:
        if self.crashed:
            return False
        return not any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def categories(self) -> list[ErrorCategory]:
        """Error categories present, in source order."""
        seen: list[ErrorCategory] = []
        for diag in sorted(self.errors, key=sort_key):
            if diag.category not in seen:
                seen.append(diag.category)
        return seen

    @property
    def log(self) -> str:
        """The feedback text an agent would see for this flavour."""
        if self.ok:
            return ""
        if self.flavor == "simple":
            return SIMPLE_FEEDBACK
        try:
            if self.flavor == "iverilog":
                return iverilog_style.render(self.diagnostics)
            return quartus_style.render(self.diagnostics)
        except Exception:  # never-crash contract extends to rendering
            name = self.source.name if self.source is not None else "main.v"
            return f"{name}:0: internal error: diagnostic rendering failed"


class Compiler:
    """Reusable compiler with a fixed flavour, file name and limits."""

    def __init__(
        self,
        flavor: CompilerFlavor = "iverilog",
        file_name: str = "main.v",
        limits: "ResourceLimits | None" = None,
    ):
        if flavor not in ("simple", "iverilog", "quartus"):
            raise ValueError(f"unknown compiler flavor: {flavor!r}")
        self.flavor: CompilerFlavor = flavor
        self.file_name = file_name
        #: Resource budgets enforced on every compile (None = defaults).
        self.limits = limits

    def compile(self, code: str) -> CompileResult:
        """Compile ``code`` under this compiler's flavour and limits."""
        # Routed through the content-addressed cache: agents re-compile
        # the same revision across repeated trials, and compilation is a
        # pure function of the inputs.  (Deferred import: repro.runtime
        # falls back to compile_source below, avoiding a cycle.)
        from ..runtime.cache import cached_compile

        return cached_compile(
            code, name=self.file_name, flavor=self.flavor, limits=self.limits
        )


def compile_source(
    code: str,
    name: str = "main.v",
    flavor: CompilerFlavor = "iverilog",
    include_files: dict[str, str] | None = None,
    limits: "ResourceLimits | None" = None,
) -> CompileResult:
    """Run the full front-end over ``code`` and collect diagnostics.

    This is the library's *never-crash, never-hang* boundary: whatever
    the input, the result is a :class:`CompileResult` carrying
    diagnostics.  Resource budgets (``limits``, default
    :data:`~repro.verilog.limits.DEFAULT_LIMITS`) are enforced
    cooperatively inside every pipeline stage and violations surface as
    ``RESOURCE_LIMIT`` diagnostics; any *unexpected* exception is caught
    here and converted into an ``INTERNAL`` diagnostic on a result with
    ``crashed=True`` -- graceful degradation, not an abort.
    """
    from ..errors import ResourceLimitExceeded
    from ..verilog.limits import DEFAULT_LIMITS, LimitTracker
    from ..verilog.source import SourceFile, Span

    tracker = LimitTracker(limits=limits if limits is not None else DEFAULT_LIMITS)
    sink: list[Diagnostic] = []
    raw = SourceFile(name, code)
    head = Span(raw, 0, min(1, len(code))) if code else None
    try:
        return _run_pipeline(raw, flavor, include_files, tracker, sink)
    except ResourceLimitExceeded as exc:
        # A stage unwound cooperatively: an ordinary limit diagnostic,
        # not a crash.
        sink.append(
            Diagnostic(
                ErrorCategory.RESOURCE_LIMIT, head,
                {"what": exc.kind, "limit": exc.limit},
            )
        )
        return CompileResult(source=raw, flavor=flavor, diagnostics=_dedup(sink))
    except Exception as exc:  # the catch-all crash boundary
        detail = f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__
        sink.append(
            Diagnostic(ErrorCategory.INTERNAL, head, {"detail": detail})
        )
        return CompileResult(
            source=raw, flavor=flavor, diagnostics=_dedup(sink), crashed=True
        )


def _run_pipeline(
    raw: "SourceFile",
    flavor: CompilerFlavor,
    include_files: dict[str, str] | None,
    tracker,
    sink: list[Diagnostic],
) -> CompileResult:
    """The actual lexer -> preprocessor -> parser -> elaborator run."""
    from ..verilog.elaborate import ElabDesign, elaborate
    from ..verilog.parser import parse
    from ..verilog.preprocessor import preprocess
    from ..verilog.source import Span

    if not tracker.charge("source bytes", len(raw.text.encode("utf-8", "replace"))):
        diag = tracker.diagnose(
            "source bytes", Span(raw, 0, 1) if raw.text else None
        )
        if diag is not None:
            sink.append(diag)
        return CompileResult(source=raw, flavor=flavor, diagnostics=_dedup(sink))

    pre = preprocess(raw, include_files=include_files, tracker=tracker)
    sink.extend(pre.diagnostics)
    design = parse(pre.source, sink, tracker=tracker)
    elaborated: Optional[ElabDesign] = None
    if not design.modules:
        # No module parsed at all: report it once (unless parsing already
        # produced an explanation).
        if not sink:
            sink.append(
                Diagnostic(ErrorCategory.SYNTAX_NEAR, None, {"near": "empty design"})
            )
    else:
        elaborated = elaborate(design, sink, tracker=tracker)
    return CompileResult(
        source=pre.source,
        flavor=flavor,
        diagnostics=_dedup(sink),
        design=design,
        elaborated=elaborated,
    )


def _dedup(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    seen: set[tuple] = set()
    out: list[Diagnostic] = []
    for diag in diagnostics:
        key = (
            diag.category,
            diag.span.start if diag.span else None,
            tuple(sorted((k, str(v)) for k, v in diag.args.items())),
        )
        if key in seen:
            continue
        seen.add(key)
        out.append(diag)
    return out
