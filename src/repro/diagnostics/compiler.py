"""Compiler facade: source text in, diagnostics + rendered log out.

This is the tool the agents invoke.  The underlying analysis (lexer →
preprocessor → parser → elaborator) is identical for every flavour; the
flavour only controls how much *information* the rendered feedback
carries, which is precisely the variable the paper's feedback-quality
ablation manipulates:

* ``simple``   -- no compiler log at all, just a fixed instruction;
* ``iverilog`` -- terse logs, 7 distinguishable categories;
* ``quartus``  -- verbose tagged logs, all 11 categories + hints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Literal, Optional

from . import iverilog_style, quartus_style
from .codes import ErrorCategory
from .diagnostic import Diagnostic, Severity, sort_key

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle with
    # repro.verilog, whose modules import the diagnostics catalog.
    from ..verilog.ast import Design
    from ..verilog.elaborate import ElabDesign
    from ..verilog.source import SourceFile

CompilerFlavor = Literal["simple", "iverilog", "quartus"]

#: The fixed instruction used as "feedback" at the lowest quality level
#: (paper §4.3.1: "Correct the syntax error in the code.").
SIMPLE_FEEDBACK = "Correct the syntax error in the code."


@dataclass
class CompileResult:
    """Outcome of one compiler invocation."""

    source: "SourceFile"
    flavor: CompilerFlavor
    diagnostics: list[Diagnostic] = field(default_factory=list)
    design: Optional["Design"] = None
    elaborated: Optional["ElabDesign"] = None

    @property
    def ok(self) -> bool:
        return not any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def categories(self) -> list[ErrorCategory]:
        """Error categories present, in source order."""
        seen: list[ErrorCategory] = []
        for diag in sorted(self.errors, key=sort_key):
            if diag.category not in seen:
                seen.append(diag.category)
        return seen

    @property
    def log(self) -> str:
        """The feedback text an agent would see for this flavour."""
        if self.ok:
            return ""
        if self.flavor == "simple":
            return SIMPLE_FEEDBACK
        if self.flavor == "iverilog":
            return iverilog_style.render(self.diagnostics)
        return quartus_style.render(self.diagnostics)


class Compiler:
    """Reusable compiler with a fixed flavour and file name."""

    def __init__(self, flavor: CompilerFlavor = "iverilog", file_name: str = "main.v"):
        if flavor not in ("simple", "iverilog", "quartus"):
            raise ValueError(f"unknown compiler flavor: {flavor!r}")
        self.flavor: CompilerFlavor = flavor
        self.file_name = file_name

    def compile(self, code: str) -> CompileResult:
        # Routed through the content-addressed cache: agents re-compile
        # the same revision across repeated trials, and compilation is a
        # pure function of the inputs.  (Deferred import: repro.runtime
        # falls back to compile_source below, avoiding a cycle.)
        from ..runtime.cache import cached_compile

        return cached_compile(code, name=self.file_name, flavor=self.flavor)


def compile_source(
    code: str,
    name: str = "main.v",
    flavor: CompilerFlavor = "iverilog",
    include_files: dict[str, str] | None = None,
) -> CompileResult:
    """Run the full front-end over ``code`` and collect diagnostics."""
    from ..verilog.elaborate import ElabDesign, elaborate
    from ..verilog.parser import parse
    from ..verilog.preprocessor import preprocess
    from ..verilog.source import SourceFile

    sink: list[Diagnostic] = []
    raw = SourceFile(name, code)
    pre = preprocess(raw, include_files=include_files)
    sink.extend(pre.diagnostics)
    design = parse(pre.source, sink)
    elaborated: Optional[ElabDesign] = None
    if not design.modules:
        # No module parsed at all: report it once (unless parsing already
        # produced an explanation).
        if not sink:
            sink.append(
                Diagnostic(ErrorCategory.SYNTAX_NEAR, None, {"near": "empty design"})
            )
    else:
        elaborated = elaborate(design, sink)
    return CompileResult(
        source=pre.source,
        flavor=flavor,
        diagnostics=_dedup(sink),
        design=design,
        elaborated=elaborated,
    )


def _dedup(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    seen: set[tuple] = set()
    out: list[Diagnostic] = []
    for diag in diagnostics:
        key = (
            diag.category,
            diag.span.start if diag.span else None,
            tuple(sorted((k, str(v)) for k, v in diag.args.items())),
        )
        if key in seen:
            continue
        seen.add(key)
        out.append(diag)
    return out
