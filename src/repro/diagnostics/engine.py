"""Unified diagnostic engine: one sink for every compiler stage.

Before this module existed each front-end stage (preprocessor, lexer,
parser, elaborator) hand-wired its own diagnostic list, its own
``LimitTracker`` plumbing and its own slice of the crash boundary, and
the rendered log was assembled in a fourth place.  The
:class:`DiagnosticEngine` collapses those paths into a single object
that every stage reports into:

* **stage provenance** -- each diagnostic is recorded together with the
  stage that emitted it (``driver``/``preprocess``/``lex``/``parse``/
  ``elaborate``/``render``), queryable via :meth:`DiagnosticEngine.records`
  and :meth:`DiagnosticEngine.stages_for`;
* **escalation** -- cooperative limit violations
  (:meth:`~DiagnosticEngine.limit_violation`) and unexpected crashes
  (:meth:`~DiagnosticEngine.internal_error`, which also sets the
  ``crashed`` flag) funnel through the same sink as ordinary
  diagnostics, so ``RESOURCE_LIMIT``/``INTERNAL`` handling lives in one
  place;
* **rendering** -- :func:`render_log` is the single
  iverilog/Quartus/simple renderer entry point (with the never-crash
  fallback), used by :class:`~repro.diagnostics.compiler.CompileResult`.

The engine deliberately does *not* import anything from
``repro.verilog``: trackers and spans are passed in by the stages, so
the diagnostics package stays import-cycle-free.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from . import iverilog_style, quartus_style
from .codes import ErrorCategory
from .diagnostic import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .compiler import CompileResult

#: The fixed instruction used as "feedback" at the lowest quality level
#: (paper §4.3.1: "Correct the syntax error in the code.").
SIMPLE_FEEDBACK = "Correct the syntax error in the code."

#: Canonical stage names, in pipeline order.  ``driver`` covers work
#: done by the orchestrator itself (e.g. the source-size admission
#: check); ``render`` exists for provenance symmetry -- rendering
#: happens lazily on :class:`~repro.diagnostics.compiler.CompileResult`.
STAGES = ("driver", "preprocess", "lex", "parse", "elaborate", "render")


def dedup_key(diag: Diagnostic) -> tuple:
    """The identity under which duplicate diagnostics are merged.

    Category + span start + stringified args: two stages (or one stage
    re-probing after error recovery) reporting the same problem at the
    same location collapse to the first occurrence.
    """
    return (
        diag.category,
        diag.span.start if diag.span else None,
        tuple(sorted((k, str(v)) for k, v in diag.args.items())),
    )


def dedup_diagnostics(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    """Drop duplicate diagnostics, preserving first-occurrence order."""
    seen: set[tuple] = set()
    out: list[Diagnostic] = []
    for diag in diagnostics:
        key = dedup_key(diag)
        if key in seen:
            continue
        seen.add(key)
        out.append(diag)
    return out


def render_log(result: "CompileResult") -> str:
    """Render the agent-facing feedback text for ``result``.

    The single renderer entry point for every flavour; the never-crash
    contract extends here, so a renderer bug degrades to a one-line
    internal-error message instead of an exception.
    """
    if result.ok:
        return ""
    if result.flavor == "simple":
        return SIMPLE_FEEDBACK
    try:
        if result.flavor == "iverilog":
            return iverilog_style.render(result.diagnostics)
        return quartus_style.render(result.diagnostics)
    except Exception:  # never-crash contract extends to rendering
        name = result.source.name if result.source is not None else "main.v"
        return f"{name}:0: internal error: diagnostic rendering failed"


class StageSink(list):
    """A stage-scoped diagnostic sink.

    Behaves exactly like the plain ``list[Diagnostic]`` sinks the stages
    historically accepted (append/extend/len/bool), but every diagnostic
    appended is *also* recorded on the owning :class:`DiagnosticEngine`
    with this sink's stage name -- stages keep their simple list-style
    interface while the engine gains provenance.
    """

    def __init__(self, engine: "DiagnosticEngine", stage: str):
        super().__init__()
        self.engine = engine
        self.stage = stage

    def append(self, diag: Diagnostic) -> None:
        """Record ``diag`` locally and on the engine (with provenance)."""
        super().append(diag)
        self.engine._record(self.stage, diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        """Append every diagnostic in ``diags``."""
        for diag in diags:
            self.append(diag)


class DiagnosticEngine:
    """Collects every stage's diagnostics with provenance and timing.

    One engine is created per compile.  Stages obtain a list-compatible
    sink via :meth:`sink` (or the driver forwards pre-collected
    diagnostics via :meth:`extend`); cooperative limit violations and
    crash escalation go through :meth:`limit_violation` /
    :meth:`internal_error`; :meth:`result` assembles the final deduped
    :class:`~repro.diagnostics.compiler.CompileResult`.
    """

    def __init__(self) -> None:
        #: ``(stage, diagnostic)`` in emission order.
        self._records: list[tuple[str, Diagnostic]] = []
        #: set by :meth:`internal_error`; mirrored onto the result.
        self.crashed = False
        #: wall-clock seconds spent inside each :meth:`stage` block.
        self.timings: dict[str, float] = {}
        self._stage_stack: list[str] = ["driver"]
        #: the stage whose :meth:`stage` block an exception escaped from
        #: (crash provenance survives the context-manager unwind).
        self.failed_stage: Optional[str] = None

    # -- recording ----------------------------------------------------

    def _record(self, stage: str, diag: Diagnostic) -> None:
        self._records.append((stage, diag))

    def sink(self, stage: str) -> StageSink:
        """A fresh list-compatible sink attributing appends to ``stage``."""
        return StageSink(self, stage)

    def emit(self, stage: str, diag: Diagnostic) -> None:
        """Record a single diagnostic under ``stage``."""
        self._record(stage, diag)

    def extend(self, stage: str, diags: Iterable[Diagnostic]) -> None:
        """Record pre-collected diagnostics under ``stage``, in order."""
        for diag in diags:
            self._record(stage, diag)

    # -- stage bookkeeping --------------------------------------------

    @property
    def current_stage(self) -> str:
        """The innermost active :meth:`stage` block (``driver`` at rest)."""
        return self._stage_stack[-1]

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Mark ``name`` as the active stage and accumulate its wall time.

        If an exception escapes the block, the stage is remembered in
        :attr:`failed_stage` so the crash boundary can attribute the
        ``RESOURCE_LIMIT``/``INTERNAL`` diagnostic to the stage that
        actually failed (the stack itself unwinds with the exception).
        """
        self._stage_stack.append(name)
        start = time.perf_counter()
        try:
            yield
        except BaseException:
            self.failed_stage = name
            raise
        finally:
            self.timings[name] = (
                self.timings.get(name, 0.0) + time.perf_counter() - start
            )
            self._stage_stack.pop()

    # -- inspection ---------------------------------------------------

    @property
    def empty(self) -> bool:
        """True when no diagnostic has been recorded yet."""
        return not self._records

    @property
    def records(self) -> list[tuple[str, Diagnostic]]:
        """``(stage, diagnostic)`` pairs in emission order (a copy)."""
        return list(self._records)

    def stages_for(self, category: ErrorCategory) -> list[str]:
        """Stages that emitted at least one ``category`` diagnostic."""
        seen: list[str] = []
        for stage, diag in self._records:
            if diag.category is category and stage not in seen:
                seen.append(stage)
        return seen

    def diagnostics(self) -> list[Diagnostic]:
        """All recorded diagnostics, deduplicated, in emission order."""
        return dedup_diagnostics(diag for _, diag in self._records)

    # -- escalation ---------------------------------------------------

    def _escalation_stage(self, stage: Optional[str]) -> str:
        if stage is not None:
            return stage
        if self.failed_stage is not None:
            return self.failed_stage
        return self.current_stage

    def limit_violation(self, exc, span, stage: Optional[str] = None) -> None:
        """Record a cooperative :class:`~repro.errors.ResourceLimitExceeded`
        unwind as an ordinary ``RESOURCE_LIMIT`` diagnostic (not a crash)."""
        self.emit(
            self._escalation_stage(stage),
            Diagnostic(
                ErrorCategory.RESOURCE_LIMIT, span,
                {"what": exc.kind, "limit": exc.limit},
            ),
        )

    def internal_error(self, exc: BaseException, span,
                       stage: Optional[str] = None) -> None:
        """Record an unexpected crash as an ``INTERNAL`` diagnostic and
        flip :attr:`crashed` -- the never-crash boundary in one place."""
        detail = f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__
        self.emit(
            self._escalation_stage(stage),
            Diagnostic(ErrorCategory.INTERNAL, span, {"detail": detail}),
        )
        self.crashed = True

    # -- assembly -----------------------------------------------------

    def result(self, source, flavor, design=None, elaborated=None) -> "CompileResult":
        """Assemble the final :class:`~repro.diagnostics.compiler.CompileResult`
        from everything recorded so far (deduplicated, crash flag carried)."""
        from .compiler import CompileResult
        from .diagnostic import Severity

        diagnostics = self.diagnostics()
        if (
            elaborated is not None
            and getattr(elaborated, "digest", None) is None
            and not self.crashed
            and not any(d.severity is Severity.ERROR for d in diagnostics)
        ):
            # Stamp the design's content identity.  Both compile paths
            # (cold compile_source and the staged pipeline) converge
            # here, and only error-free elaborations get a digest: with
            # no errors, elaboration is a pure function of the
            # preprocessed text, so the digest is a sound cache key for
            # anything derived from the design (compiled simulators,
            # testbench verdicts).  Error-bearing results may be
            # partially elaborated under resource limits and stay
            # ``None`` = uncacheable.
            import hashlib

            text = getattr(source, "text", None)
            if isinstance(text, str):
                elaborated.digest = hashlib.sha256(
                    text.encode("utf-8", "surrogatepass")
                ).hexdigest()

        return CompileResult(
            source=source,
            flavor=flavor,
            diagnostics=diagnostics,
            design=design,
            elaborated=elaborated,
            crashed=self.crashed,
        )
