"""Error catalog for the Verilog front-end.

The paper's RAG database is keyed by *compiler error categories*: it
collects "7 common error categories ... for iverilog and 11 common error
categories ... for Quartus".  We reproduce that asymmetry structurally:

* every diagnostic carries an :class:`ErrorCategory`;
* the Quartus-style renderer exposes all 11 categories through stable
  numeric tags (``Error (10161): ...``), like the real tool;
* the iverilog-style renderer only *distinguishes* 7 of them -- the rest
  collapse into a terse generic ``syntax error`` (occasionally the
  infamous ``I give up.``), exactly the ambiguity the paper describes.

Numeric tags match real Quartus codes where those are documented
(10161 undeclared object, 10232 index out of range, 10170 syntax near);
the remainder are stable synthetic tags in the same numbering style.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ErrorCategory(enum.Enum):
    """Syntax/semantic error classes covered by the dataset and RAG DB."""

    UNDECLARED_ID = "undeclared-identifier"
    INDEX_RANGE = "index-out-of-range"
    INVALID_LVALUE = "invalid-lvalue"
    SYNTAX_NEAR = "syntax-error-near"
    BAD_LITERAL = "malformed-literal"
    PORT_MISMATCH = "port-mismatch"
    DUPLICATE_DECL = "duplicate-declaration"
    MISSING_SEMICOLON = "missing-semicolon"
    UNBALANCED_BLOCK = "unbalanced-block"
    C_STYLE_SYNTAX = "c-style-syntax"
    EVENT_EXPR = "bad-event-expression"
    #: Warning-severity finding (not part of the 7/11 error taxonomy).
    WIDTH_TRUNCATION = "width-truncation"
    #: A ResourceLimits budget ran out (outside the paper's taxonomy:
    #: these never occur in the curated dataset, only on degenerate
    #: LLM-generated input).
    RESOURCE_LIMIT = "resource-limit"
    #: The front-end itself failed; the crash was converted into
    #: feedback at the compile_source boundary (outside the taxonomy).
    INTERNAL = "internal-error"


@dataclass(frozen=True)
class CategoryInfo:
    """Renderer-facing metadata for one error category."""

    category: ErrorCategory
    quartus_tag: int
    #: True if the iverilog-style renderer produces a message specific
    #: enough to identify the category; False means it collapses into a
    #: generic "syntax error" (the terse/ambiguous cases from the paper).
    iverilog_distinct: bool
    #: Short human label used in reports and the RAG database.
    label: str
    #: True for warning-severity findings: excluded from the error
    #: taxonomy counts the RAG database is keyed on.
    is_warning: bool = False
    #: False for robustness categories (resource limits, internal
    #: errors): real errors, but outside the paper's 7/11 taxonomy --
    #: they never occur in the curated dataset, only on degenerate
    #: input, so they must not shift the taxonomy counts.
    in_taxonomy: bool = True


_CATALOG: tuple[CategoryInfo, ...] = (
    CategoryInfo(ErrorCategory.UNDECLARED_ID, 10161, True, "object is not declared"),
    CategoryInfo(ErrorCategory.INDEX_RANGE, 10232, True, "index outside declared range"),
    CategoryInfo(ErrorCategory.INVALID_LVALUE, 10137, True, "invalid l-value"),
    CategoryInfo(ErrorCategory.SYNTAX_NEAR, 10170, True, "syntax error near token"),
    CategoryInfo(ErrorCategory.BAD_LITERAL, 10112, True, "malformed number literal"),
    CategoryInfo(ErrorCategory.PORT_MISMATCH, 10344, True, "port connection mismatch"),
    CategoryInfo(ErrorCategory.DUPLICATE_DECL, 10028, True, "duplicate declaration"),
    CategoryInfo(ErrorCategory.MISSING_SEMICOLON, 10201, False, "missing semicolon"),
    CategoryInfo(ErrorCategory.UNBALANCED_BLOCK, 10759, False, "unbalanced begin/end"),
    CategoryInfo(ErrorCategory.C_STYLE_SYNTAX, 10173, False, "C-style construct"),
    CategoryInfo(ErrorCategory.EVENT_EXPR, 10216, False, "bad event expression"),
    CategoryInfo(ErrorCategory.WIDTH_TRUNCATION, 10230, True,
                 "value truncated to fit target", is_warning=True),
    CategoryInfo(ErrorCategory.RESOURCE_LIMIT, 10905, True,
                 "resource limit exceeded", in_taxonomy=False),
    CategoryInfo(ErrorCategory.INTERNAL, 293001, True,
                 "internal compiler error", in_taxonomy=False),
)

CATALOG: dict[ErrorCategory, CategoryInfo] = {info.category: info for info in _CATALOG}

#: Categories the iverilog renderer can identify (7, as in the paper;
#: warnings are not part of the taxonomy).
IVERILOG_CATEGORIES: tuple[ErrorCategory, ...] = tuple(
    info.category for info in _CATALOG
    if info.iverilog_distinct and not info.is_warning and info.in_taxonomy
)

#: All error categories, identifiable from Quartus tags (11, as in the
#: paper).
QUARTUS_CATEGORIES: tuple[ErrorCategory, ...] = tuple(
    info.category for info in _CATALOG
    if not info.is_warning and info.in_taxonomy
)

QUARTUS_TAG_TO_CATEGORY: dict[int, ErrorCategory] = {
    info.quartus_tag: info.category for info in _CATALOG
}


def quartus_tag(category: ErrorCategory) -> int:
    """The stable numeric Quartus tag for a category."""
    return CATALOG[category].quartus_tag


def label(category: ErrorCategory) -> str:
    """Short human-readable label for a category."""
    return CATALOG[category].label
