"""repro: a full reproduction of RTLFixer (DAC 2024).

RTLFixer fixes syntax errors in LLM-generated Verilog by letting a
language model act as an autonomous agent: it compiles the code, reads
the error log, retrieves human expert guidance from a RAG database, and
iteratively revises the code (ReAct prompting) until compilation
succeeds.

Public entry points:

* :class:`repro.core.RTLFixer` -- the debugging framework itself;
* :func:`repro.diagnostics.compile_source` -- the Verilog compiler facade
  (iverilog-style or Quartus-style feedback);
* :mod:`repro.dataset` -- VerilogEval-style corpora, the error injector
  and the VerilogEval-syntax dataset builder;
* :mod:`repro.eval` -- fix-rate / pass@k metrics and the experiment
  drivers that regenerate every table and figure of the paper.
"""

from ._version import __version__

__all__ = ["__version__"]
