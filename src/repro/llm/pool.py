"""Multi-provider LLM backend pool with tier-aware routing (§ design:
the paper's gpt-3.5 → gpt-4 capability axis as a *runtime policy*).

The pool puts N configured chat backends behind the single
:class:`~repro.llm.base.RepairModel` surface the agents already use:

* **members** -- an ordered escalation ladder of named backends
  (:class:`BackendSpec`), weakest/cheapest first.  Each member is a raw
  :class:`~repro.llm.base.LLMClient` (simulated or OpenAI, see
  :mod:`repro.llm.backends`) wrapped by the existing runtime layers --
  optional :class:`~repro.runtime.faults.ChaosLLMClient` (offline outage
  testing) under a :class:`~repro.runtime.retry.RetryingLLMClient` --
  plus a deterministic :class:`~repro.runtime.limiter.TokenBucket` rate
  limiter and a :class:`~repro.runtime.limiter.ConcurrencyGate`;
* **routing** -- a session starts on the member matching the requested
  tier and *escalates* one rung after every ``escalate_after`` failed
  ReAct iterations (the agent reports outcomes through the duck-typed
  ``session.observe(ok)`` seam), reproducing the paper's "move the hard
  residue to the stronger model" axis at run time;
* **failover** -- a member whose retry budget exhausts hands the call to
  the next stronger member, so a provider outage degrades into extra
  cost instead of a failed run;
* **hedging** -- a seeded coin (pure function of ``(seed, call key)``,
  never of timing) duplicates a call to the next member concurrently;
  the primary's reply is always preferred, so hedging changes *latency*
  (the failover rung is already warm when the primary dies), never
  results;
* **accounting** -- every call books estimated tokens / cost / waits
  into the process-active :class:`~repro.runtime.accounting.TokenCounter`
  (surfaced as ``report.llm`` and the ``# llm:`` CLI line).

Determinism contract: which member answers and what it replies are pure
functions of ``(routing spec, seed, conversation content, observed
failures)``; the limiter and gate shape timing only.  A pooled run over
simulated members is therefore bit-identical to the direct
:class:`~repro.llm.SimulatedLLM` path at any ``--jobs``.
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from ..errors import LLMError, RetryExhaustedError, TransientError
from ..rag.database import GuidanceEntry
from ..runtime.accounting import (
    TokenCounter,
    estimate_tokens,
    get_active_token_counter,
)
from ..runtime.faults import ChaosLLMClient, FaultInjector, FaultSpec
from ..runtime.limiter import ConcurrencyGate, TokenBucket
from ..runtime.retry import RetryingLLMClient, RetryPolicy, messages_key
from .base import ChatMessage, RepairStep
from .backends.openai import OpenAIChatClient
from .backends.simulated import (
    SimulatedChatClient,
    build_pool_messages,
    parse_pool_reply,
)

SleepFn = Callable[[float], None]
ClockFn = Callable[[], float]

#: Per-1K-token (prompt, completion) USD prices by tier family --
#: the public OpenAI prices contemporary with the paper, which is what
#: makes simulated cost accounting comparable across tiers.
TIER_PRICES: dict[str, tuple[float, float]] = {
    "gpt-3.5": (0.0005, 0.0015),
    "gpt-4": (0.03, 0.06),
}


def _tier_family(tier: str) -> str:
    return "gpt-4" if tier.startswith("gpt-4") else "gpt-3.5"


def _stable_unit(key: str) -> float:
    """Deterministic uniform(0,1) draw from a string key."""
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class BackendSpec:
    """One configured pool member: a display name plus its model tier.

    Simulated tiers (``*-sim``) resolve to
    :class:`~repro.llm.backends.SimulatedChatClient`; anything else is
    treated as a real OpenAI-compatible model name.
    """

    name: str
    tier: str

    def __post_init__(self) -> None:
        if not self.name or any(c in self.name for c in ",=|\n "):
            raise LLMError(f"invalid backend name {self.name!r}")
        if not self.tier or any(c in self.tier for c in ",=|\n "):
            raise LLMError(f"invalid backend tier {self.tier!r}")

    @property
    def prices(self) -> tuple[float, float]:
        return TIER_PRICES[_tier_family(self.tier)]


@dataclass(frozen=True)
class RoutingSpec:
    """The full pool configuration: members + policy knobs.

    ``members`` is the escalation ladder, weakest first.  ``chaos`` is
    a test-only knob mapping member names to
    :class:`~repro.runtime.faults.FaultSpec`, so offline suites can
    declare "the cheap tier is down" for pools built deep inside
    ``RTLFixer`` (via :func:`use_llm_routing`).
    """

    members: tuple[BackendSpec, ...]
    #: Escalate one ladder rung after this many failed agent iterations
    #: (0 = never escalate; failover on outage still applies).
    escalate_after: int = 0
    #: Probability (seeded, per call) of duplicating a request to the
    #: next rung for tail latency.  0 disables hedging.
    hedge_rate: float = 0.0
    #: Per-member token-bucket refill in requests/second (0 = unlimited).
    rate: float = 0.0
    #: Per-member in-flight call cap (0 = unlimited).
    concurrency: int = 0
    #: Retry budget of each member's RetryingLLMClient wrapper.
    max_retries: int = 2
    #: name -> FaultSpec chaos injection per member (offline testing).
    chaos: Optional[dict] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.members:
            raise LLMError("a pool needs at least one backend")
        names = [m.name for m in self.members]
        if len(set(names)) != len(names):
            raise LLMError(f"duplicate backend names in pool: {names}")
        if self.escalate_after < 0:
            raise LLMError("escalate_after must be >= 0 (0 = never)")
        if not 0.0 <= self.hedge_rate <= 1.0:
            raise LLMError(f"hedge_rate must be in [0, 1], got {self.hedge_rate}")
        if self.rate < 0:
            raise LLMError("rate must be >= 0 (0 = unlimited)")
        if self.concurrency < 0:
            raise LLMError("concurrency must be >= 0 (0 = unlimited)")
        if self.max_retries < 0:
            raise LLMError("max_retries must be >= 0")

    @staticmethod
    def parse(
        spec: str,
        *,
        escalate_after: int = 0,
        hedge_rate: float = 0.0,
        rate: float = 0.0,
        concurrency: int = 0,
        max_retries: int = 2,
    ) -> "RoutingSpec":
        """Parse the CLI/config pool string.

        Format: comma-separated ``name=tier`` members, weakest first,
        e.g. ``cheap=gpt-3.5-sim,strong=gpt-4-sim``; a bare ``tier``
        names the member after itself.
        """
        members = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" in part:
                name, _, tier = part.partition("=")
                members.append(BackendSpec(name=name.strip(), tier=tier.strip()))
            else:
                members.append(BackendSpec(name=part, tier=part))
        return RoutingSpec(
            members=tuple(members),
            escalate_after=escalate_after,
            hedge_rate=hedge_rate,
            rate=rate,
            concurrency=concurrency,
            max_retries=max_retries,
        )

    def describe(self) -> str:
        """One-line summary for logs and the ``# llm:`` CLI line."""
        ladder = " -> ".join(f"{m.name}={m.tier}" for m in self.members)
        extras = []
        if self.escalate_after:
            extras.append(f"escalate_after={self.escalate_after}")
        if self.hedge_rate:
            extras.append(f"hedge={self.hedge_rate:g}")
        if self.rate:
            extras.append(f"rate={self.rate:g}/s")
        if self.concurrency:
            extras.append(f"concurrency={self.concurrency}")
        return ladder + (f" ({', '.join(extras)})" if extras else "")


def _make_raw_client(spec: BackendSpec, seed: int):
    if spec.tier.endswith("-sim"):
        return SimulatedChatClient(tier=spec.tier, seed=seed)
    return OpenAIChatClient(model=spec.tier)


class PoolMember:
    """One runtime rung of the ladder: wrapped client + limiter + gate."""

    def __init__(
        self,
        spec: BackendSpec,
        routing: RoutingSpec,
        seed: int,
        clock: ClockFn,
        sleep: SleepFn,
        raw_client=None,
    ):
        self.spec = spec
        self.raw = raw_client if raw_client is not None else _make_raw_client(
            spec, seed
        )
        client = self.raw
        self.injector: Optional[FaultInjector] = None
        chaos: Optional[FaultSpec] = (routing.chaos or {}).get(spec.name)
        if chaos is not None:
            self.injector = FaultInjector(seed=seed, client=chaos)
            client = ChaosLLMClient(client, self.injector)
        if routing.max_retries > 0:
            client = RetryingLLMClient(
                client,
                RetryPolicy(max_retries=routing.max_retries, seed=seed),
                sleep=sleep,
                clock=clock,
            )
        self.client = client
        self.limiter = TokenBucket(
            routing.rate, burst=max(1, routing.concurrency or 1),
            clock=clock, sleep=sleep,
        )
        self.gate = ConcurrencyGate(routing.concurrency)

    def cost(self, prompt_tokens: int, completion_tokens: int) -> float:
        prompt_price, completion_price = self.spec.prices
        return (
            prompt_tokens / 1000.0 * prompt_price
            + completion_tokens / 1000.0 * completion_price
        )


class _HedgeCall:
    """A concurrently pre-launched duplicate on the next ladder rung.

    Always joined before the pooled call returns, so token accounting is
    deterministic; its reply is consumed only when the primary fails.
    """

    def __init__(self, pool: "LLMPool", index: int,
                 messages: list[ChatMessage], temperature: float,
                 counter: TokenCounter):
        self.index = index
        self.reply: Optional[str] = None
        self.error: Optional[Exception] = None
        self._thread = threading.Thread(
            target=self._run,
            args=(pool, messages, temperature, counter),
            daemon=True,
        )

    def start(self) -> None:
        self._thread.start()

    def _run(self, pool, messages, temperature, counter) -> None:
        try:
            self.reply = pool._call_member(
                self.index, messages, temperature, counter, hedge=True
            )
        except (TransientError, RetryExhaustedError, LLMError) as exc:
            self.error = exc

    def join(self) -> Optional[str]:
        self._thread.join()
        return self.reply


class LLMPool:
    """The runtime pool: the ladder plus the routed call path."""

    def __init__(
        self,
        routing: RoutingSpec,
        seed: int = 0,
        clock: ClockFn = time.monotonic,
        sleep: SleepFn = time.sleep,
        clients: Optional[dict] = None,
    ):
        """``clients`` maps member names to caller-supplied raw clients
        (bench/test injection); unnamed members get the default adapter
        for their tier."""
        self.routing = routing
        self.seed = seed
        self.members = [
            PoolMember(
                spec, routing, seed, clock, sleep,
                raw_client=(clients or {}).get(spec.name),
            )
            for spec in routing.members
        ]

    def base_index(self, tier: str) -> int:
        """The ladder rung a session of ``tier`` starts on: the first
        member of that exact tier, else of the same family, else 0."""
        for i, member in enumerate(self.members):
            if member.spec.tier == tier:
                return i
        family = _tier_family(tier)
        for i, member in enumerate(self.members):
            if _tier_family(member.spec.tier) == family:
                return i
        return 0

    def _call_member(
        self,
        index: int,
        messages: list[ChatMessage],
        temperature: float,
        counter: TokenCounter,
        *,
        escalated: bool = False,
        failover: bool = False,
        hedge: bool = False,
    ) -> str:
        member = self.members[index]
        name = member.spec.name
        waited = member.limiter.acquire()
        counter.record_throttle(name, waited)
        if hedge:
            counter.record_hedge(name)
        try:
            with member.gate:
                reply = member.client.complete(messages, temperature=temperature)
        except (TransientError, RetryExhaustedError, LLMError):
            counter.record_failure(name)
            raise
        prompt_tokens = sum(estimate_tokens(m.content) for m in messages)
        completion_tokens = estimate_tokens(reply)
        counter.record_call(
            name,
            prompt_tokens,
            completion_tokens,
            member.cost(prompt_tokens, completion_tokens),
            failover=failover,
            escalated=escalated,
        )
        return reply

    def call(
        self,
        messages: list[ChatMessage],
        temperature: float,
        *,
        call_key: str,
        index: int,
        base_index: int = 0,
    ) -> str:
        """One routed completion: hedging, then failover up the ladder.

        ``index`` is the escalation-chosen starting rung; on failure the
        call walks strictly upward (weaker members cannot answer for
        stronger ones).  Raises the last member's error when the whole
        ladder is down.
        """
        counter = get_active_token_counter()
        hedge: Optional[_HedgeCall] = None
        hedge_index = index + 1
        if (
            self.routing.hedge_rate > 0.0
            and hedge_index < len(self.members)
            and _stable_unit(f"hedge|{self.seed}|{call_key}")
            < self.routing.hedge_rate
        ):
            hedge = _HedgeCall(self, hedge_index, messages, temperature, counter)
            hedge.start()
        try:
            last_error: Optional[Exception] = None
            for i in range(index, len(self.members)):
                if hedge is not None and i == hedge_index:
                    reply = hedge.join()
                    if reply is not None:
                        counter.record_hedge_win(self.members[i].spec.name)
                        return reply
                    last_error = hedge.error or last_error
                    continue  # the duplicate already failed this rung
                try:
                    return self._call_member(
                        i, messages, temperature, counter,
                        escalated=(i == index and index > base_index),
                        failover=(i > index),
                    )
                except (TransientError, RetryExhaustedError, LLMError) as exc:
                    last_error = exc
            raise last_error if last_error is not None else LLMError(
                "empty pool ladder"
            )
        finally:
            if hedge is not None:
                hedge.join()  # deterministic accounting: idempotent join


class PooledRepairModel:
    """:class:`~repro.llm.base.RepairModel` facade over an
    :class:`LLMPool` -- what ``RTLFixer`` builds when a pool is
    configured, in place of a bare :class:`~repro.llm.SimulatedLLM`."""

    def __init__(
        self,
        routing: RoutingSpec,
        tier: str = "gpt-3.5-sim",
        temperature: float = 0.4,
        seed: int = 0,
        clock: ClockFn = time.monotonic,
        sleep: SleepFn = time.sleep,
        clients: Optional[dict] = None,
    ):
        self.routing = routing
        self.tier = tier
        self.temperature = temperature
        self.seed = seed
        self._clock = clock
        self._sleep = sleep
        self._clients = clients
        self.pool = LLMPool(
            routing, seed=seed, clock=clock, sleep=sleep, clients=clients
        )
        self._starts = 0
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        # The pool is an implementation detail (like the Retrying*
        # wrappers): reports see the requested tier, so pooled and
        # direct runs label identically.
        return self.tier

    def with_seed(self, seed: int) -> "PooledRepairModel":
        clients = self._clients
        if clients is not None:
            reseeded = {}
            for key, client in clients.items():
                reseed = getattr(client, "with_seed", None)
                reseeded[key] = reseed(seed) if callable(reseed) else client
            clients = reseeded
        return PooledRepairModel(
            self.routing, tier=self.tier, temperature=self.temperature,
            seed=seed, clock=self._clock, sleep=self._sleep, clients=clients,
        )

    def start(self, code: str, flavor: str, use_rag: bool) -> "PooledRepairSession":
        with self._lock:
            self._starts += 1
            ordinal = self._starts
        return PooledRepairSession(self, code, flavor, use_rag, ordinal)

    def __getstate__(self) -> dict:
        # Rebuildable from config: live sessions, locks and injected
        # clients stay behind (process workers rebuild from RTLFixer
        # config anyway; injected clients must be re-injected there).
        return {
            "routing": self.routing,
            "tier": self.tier,
            "temperature": self.temperature,
            "seed": self.seed,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["routing"],
            tier=state["tier"],
            temperature=state["temperature"],
            seed=state["seed"],
        )


class PooledRepairSession:
    """One debugging conversation routed through the pool.

    Holds the escalation state: the agent reports every iteration's
    compile outcome via :meth:`observe`, and after each block of
    ``escalate_after`` failures the session climbs one ladder rung.
    """

    def __init__(self, model: PooledRepairModel, code: str, flavor: str,
                 use_rag: bool, ordinal: int):
        self.pool = model.pool
        self.routing = model.routing
        self.temperature = model.temperature
        self.seed = model.seed
        self.flavor = flavor
        self.use_rag = use_rag
        self.base = self.pool.base_index(model.tier)
        self.failed_rounds = 0
        # The token ties this conversation's turns together across raw
        # complete() calls; the start ordinal keeps two conversations
        # about the same code distinct (a fresh session per start, like
        # the direct path).
        self.token = (
            f"{model.seed}.{ordinal}.{model.tier}."
            f"{flavor}.{int(use_rag)}.{_digest(code)}"
        )

    def observe(self, success: bool) -> None:
        """The agent's per-iteration outcome (escalation signal)."""
        if not success:
            self.failed_rounds += 1

    @property
    def member_index(self) -> int:
        """The ladder rung the next step will start on."""
        if self.routing.escalate_after <= 0:
            return self.base
        climb = self.failed_rounds // self.routing.escalate_after
        return min(self.base + climb, len(self.pool.members) - 1)

    def step(self, code: str, feedback: str,
             guidance: list[GuidanceEntry]) -> RepairStep:
        messages = build_pool_messages(
            code, feedback, guidance,
            session=self.token, flavor=self.flavor, use_rag=self.use_rag,
        )
        reply = self.pool.call(
            messages,
            self.temperature,
            call_key=messages_key(messages, self.temperature),
            index=self.member_index,
            base_index=self.base,
        )
        return parse_pool_reply(reply, guidance)


# -- process-global routing injection ---------------------------------------
# Same shape as use_compile_cache / use_token_counter: tests and
# experiment drivers install a RoutingSpec here and every RTLFixer built
# inside the scope (including in forked process workers) routes its
# model through a pool -- no plumbing through call signatures.

_active_routing: Optional[RoutingSpec] = None
_routing_lock = threading.Lock()


def get_default_llm_routing() -> Optional[RoutingSpec]:
    """The ambient routing spec, or ``None`` (direct models)."""
    return _active_routing


def set_default_llm_routing(
    routing: Optional[RoutingSpec],
) -> Optional[RoutingSpec]:
    """Install ``routing`` as the ambient spec; returns the previous."""
    global _active_routing
    with _routing_lock:
        previous = _active_routing
        _active_routing = routing
    return previous


@contextmanager
def use_llm_routing(routing: Optional[RoutingSpec]) -> Iterator[Optional[RoutingSpec]]:
    """Scope an ambient routing spec for a ``with`` block."""
    previous = set_default_llm_routing(routing)
    try:
        yield routing
    finally:
        set_default_llm_routing(previous)


def routing_from_config(config) -> Optional[RoutingSpec]:
    """The routing an :class:`~repro.core.RTLFixer` should use:
    ``config.llm_pool`` (with the config's policy knobs) when set,
    else the ambient :func:`get_default_llm_routing` spec."""
    if getattr(config, "llm_pool", None):
        return RoutingSpec.parse(
            config.llm_pool,
            escalate_after=config.llm_escalate_after,
            hedge_rate=config.llm_hedge,
            rate=config.llm_rate,
            concurrency=config.llm_concurrency,
            max_retries=config.max_retries,
        )
    return get_default_llm_routing()


__all__ = [
    "BackendSpec",
    "LLMPool",
    "PoolMember",
    "PooledRepairModel",
    "PooledRepairSession",
    "RoutingSpec",
    "TIER_PRICES",
    "get_default_llm_routing",
    "routing_from_config",
    "set_default_llm_routing",
    "use_llm_routing",
]
