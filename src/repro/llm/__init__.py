"""LLM layer: the simulated repair model (offline stand-in for GPT-3.5 /
GPT-4) plus the documented OpenAI-API path."""

from .base import ChatMessage, LLMClient, RepairModel, RepairSession, RepairStep
from .openai_stub import (
    ONE_SHOT_SYSTEM_PROMPT,
    REACT_SYSTEM_PROMPT,
    OpenAIRepairModel,
    build_repair_messages,
    parse_repair_reply,
)
from .backends import OpenAIChatClient, SimulatedChatClient
from .pool import (
    BackendSpec,
    LLMPool,
    PooledRepairModel,
    PooledRepairSession,
    RoutingSpec,
    get_default_llm_routing,
    routing_from_config,
    set_default_llm_routing,
    use_llm_routing,
)
from .repair.diagnosis import ParsedError, detect_flavor, parse_feedback
from .repair.logic_strategies import enumerate_logic_edits
from .repair.strategies import STRATEGIES, apply_strategy, declared_names
from .simfix import LOGIC_CAPABILITY, PooledLogicModel, SimulatedLogicDebugger
from .simulated import CAPABILITY, CATEGORY_DELTA, ROUND_SUCCESS, SimulatedLLM

__all__ = [
    "BackendSpec",
    "CAPABILITY",
    "CATEGORY_DELTA",
    "ChatMessage",
    "LLMPool",
    "OpenAIChatClient",
    "PooledLogicModel",
    "PooledRepairModel",
    "PooledRepairSession",
    "RoutingSpec",
    "SimulatedChatClient",
    "get_default_llm_routing",
    "routing_from_config",
    "set_default_llm_routing",
    "use_llm_routing",
    "LLMClient",
    "LOGIC_CAPABILITY",
    "SimulatedLogicDebugger",
    "enumerate_logic_edits",
    "ONE_SHOT_SYSTEM_PROMPT",
    "OpenAIRepairModel",
    "ParsedError",
    "REACT_SYSTEM_PROMPT",
    "ROUND_SUCCESS",
    "RepairModel",
    "RepairSession",
    "RepairStep",
    "STRATEGIES",
    "SimulatedLLM",
    "apply_strategy",
    "build_repair_messages",
    "declared_names",
    "detect_flavor",
    "parse_feedback",
    "parse_repair_reply",
]
