"""Simulated LLM for *logic* (simulation-error) debugging — paper §5.

The paper's preliminary study found LLMs "only exhibited proficiency in
fixing logic implementation errors for simple problems but struggled
with more complex questions".  This debugger reproduces that behaviour:

* a per-sample capability coin, much stingier than the syntax fixer's
  and strongly difficulty-dependent;
* when capable, the model walks the space of plausible single-site
  semantic edits (:mod:`repro.llm.repair.logic_strategies`), relying on
  the agent's simulation feedback to accept or reject each proposal;
* when not capable, it rewrites cosmetically or tweaks the wrong site,
  as real models do when they cannot interpret waveform feedback.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .base import RepairStep
from .repair.logic_strategies import enumerate_logic_edits
from .simulated import _stable_unit, _tier_key

#: Probability that a sample's logic bug is within the model's reach,
#: by (tier, difficulty).  Calibrated to the paper's qualitative claim:
#: useful on simple problems, nearly hopeless on hard ones.
LOGIC_CAPABILITY = {
    ("gpt-3.5", "easy"): 0.55,
    ("gpt-3.5", "hard"): 0.10,
    ("gpt-4", "easy"): 0.75,
    ("gpt-4", "hard"): 0.25,
}


@dataclass
class SimulatedLogicDebugger:
    """RepairModel-like factory for simulation-debugging sessions."""

    tier: str = "gpt-3.5-sim"
    seed: int = 0

    @property
    def name(self) -> str:
        return f"{self.tier}-logic"

    def start(self, code: str, difficulty: str = "hard") -> "LogicDebugSession":
        return LogicDebugSession(self, code, difficulty)


class LogicDebugSession:
    """One logic-debugging conversation; walks candidate edits."""
    def __init__(self, model: SimulatedLogicDebugger, code: str, difficulty: str):
        tier = _tier_key(model.tier)
        key = f"logic|{model.seed}|{tier}|{difficulty}|{code}"
        self.rng = random.Random(key)
        ceiling = LOGIC_CAPABILITY[(tier, "easy" if difficulty == "easy" else "hard")]
        self.capable = _stable_unit("cap|" + key) < ceiling
        self._candidates = enumerate_logic_edits(code) if self.capable else []
        self.rng.shuffle(self._candidates)
        self._cursor = 0

    def step(self, code: str, feedback: str) -> RepairStep:
        """Propose the next candidate logic edit given waveform feedback."""
        if not self.capable:
            return RepairStep(
                thought="The waveform comparison is hard to interpret; the "
                "implementation looks consistent with the description to me.",
                code=code,
                declared_done=True,
            )
        while self._cursor < len(self._candidates):
            candidate = self._candidates[self._cursor]
            self._cursor += 1
            if candidate != code:
                return RepairStep(
                    thought="The mismatching samples suggest a polarity or "
                    "operator slip; I will try a targeted one-line change "
                    "and re-simulate.",
                    code=candidate,
                )
        return RepairStep(
            thought="I have exhausted the plausible single-site edits "
            "without matching the expected waveform.",
            code=code,
            declared_done=True,
        )


class PooledLogicModel:
    """Logic-debug sessions routed across an LLM-pool escalation ladder.

    The functional-repair counterpart of
    :class:`~repro.llm.pool.PooledRepairModel`: the session starts on
    the ladder rung matching ``tier`` (same exact-tier / family / first
    resolution as :meth:`~repro.llm.pool.LLMPool.base_index`) and climbs
    one rung after every ``escalate_after`` failed iterations reported
    through the duck-typed ``observe`` seam.  Every step is booked
    against the active :class:`~repro.runtime.TokenCounter` at the
    member tier's prices, so ``report.llm`` covers the functional
    workload exactly like the syntax one.

    With escalation disabled and a ladder whose base rung matches
    ``tier``, results are bit-identical to the direct
    :class:`SimulatedLogicDebugger` (sessions are keyed by the same
    ``(seed, tier-key, difficulty, code)``); the pool only *adds*
    accounting, which is runtime telemetry outside report digests.
    """

    def __init__(self, routing, tier: str = "gpt-3.5-sim", seed: int = 0):
        self.routing = routing
        self.tier = tier
        self.seed = seed

    @property
    def name(self) -> str:
        # Like PooledRepairModel: reports see the requested tier, so
        # pooled and direct runs label identically.
        return f"{self.tier}-logic"

    def with_seed(self, seed: int) -> "PooledLogicModel":
        return PooledLogicModel(self.routing, tier=self.tier, seed=seed)

    def base_index(self) -> int:
        """The ladder rung sessions start on: first member of the exact
        tier, else of the same family, else 0."""
        from .pool import _tier_family

        for index, member in enumerate(self.routing.members):
            if member.tier == self.tier:
                return index
        family = _tier_family(self.tier)
        for index, member in enumerate(self.routing.members):
            if _tier_family(member.tier) == family:
                return index
        return 0

    def start(self, code: str, difficulty: str = "hard") -> "PooledLogicSession":
        return PooledLogicSession(self, code, difficulty)


class PooledLogicSession:
    """One logic-debugging conversation with tier escalation."""

    def __init__(self, model: PooledLogicModel, code: str, difficulty: str):
        self.model = model
        self.routing = model.routing
        self.difficulty = difficulty
        self.base = model.base_index()
        self.failed_rounds = 0
        self._rung: int | None = None
        self._session: LogicDebugSession | None = None

    def observe(self, success: bool) -> None:
        """The engine's per-iteration outcome (escalation signal)."""
        if not success:
            self.failed_rounds += 1

    @property
    def member_index(self) -> int:
        """The ladder rung the next step will run on."""
        if self.routing.escalate_after <= 0:
            return self.base
        climb = self.failed_rounds // self.routing.escalate_after
        return min(self.base + climb, len(self.routing.members) - 1)

    def step(self, code: str, feedback: str) -> RepairStep:
        from ..runtime.accounting import estimate_tokens, get_active_token_counter

        index = self.member_index
        escalated = False
        if self._session is None or self._rung != index:
            # A fresh per-rung session seeded from the current code --
            # the stronger tier re-derives its own capability and
            # candidate walk, like a new model joining the conversation.
            escalated = self._rung is not None and index > self._rung
            member = self.routing.members[index]
            debugger = SimulatedLogicDebugger(
                tier=member.tier, seed=self.model.seed
            )
            self._session = debugger.start(code, self.difficulty)
            self._rung = index
        member = self.routing.members[index]
        step = self._session.step(code, feedback)
        prompt_tokens = estimate_tokens(code) + estimate_tokens(feedback)
        completion_tokens = (
            estimate_tokens(step.thought) + estimate_tokens(step.code)
        )
        prompt_price, completion_price = member.prices
        cost = (
            prompt_tokens * prompt_price + completion_tokens * completion_price
        ) / 1000.0
        get_active_token_counter().record_call(
            member.name, prompt_tokens, completion_tokens, cost,
            escalated=escalated,
        )
        return step
