"""Simulated LLM for *logic* (simulation-error) debugging — paper §5.

The paper's preliminary study found LLMs "only exhibited proficiency in
fixing logic implementation errors for simple problems but struggled
with more complex questions".  This debugger reproduces that behaviour:

* a per-sample capability coin, much stingier than the syntax fixer's
  and strongly difficulty-dependent;
* when capable, the model walks the space of plausible single-site
  semantic edits (:mod:`repro.llm.repair.logic_strategies`), relying on
  the agent's simulation feedback to accept or reject each proposal;
* when not capable, it rewrites cosmetically or tweaks the wrong site,
  as real models do when they cannot interpret waveform feedback.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .base import RepairStep
from .repair.logic_strategies import enumerate_logic_edits
from .simulated import _stable_unit, _tier_key

#: Probability that a sample's logic bug is within the model's reach,
#: by (tier, difficulty).  Calibrated to the paper's qualitative claim:
#: useful on simple problems, nearly hopeless on hard ones.
LOGIC_CAPABILITY = {
    ("gpt-3.5", "easy"): 0.55,
    ("gpt-3.5", "hard"): 0.10,
    ("gpt-4", "easy"): 0.75,
    ("gpt-4", "hard"): 0.25,
}


@dataclass
class SimulatedLogicDebugger:
    """RepairModel-like factory for simulation-debugging sessions."""

    tier: str = "gpt-3.5-sim"
    seed: int = 0

    @property
    def name(self) -> str:
        return f"{self.tier}-logic"

    def start(self, code: str, difficulty: str = "hard") -> "LogicDebugSession":
        return LogicDebugSession(self, code, difficulty)


class LogicDebugSession:
    """One logic-debugging conversation; walks candidate edits."""
    def __init__(self, model: SimulatedLogicDebugger, code: str, difficulty: str):
        tier = _tier_key(model.tier)
        key = f"logic|{model.seed}|{tier}|{difficulty}|{code}"
        self.rng = random.Random(key)
        ceiling = LOGIC_CAPABILITY[(tier, "easy" if difficulty == "easy" else "hard")]
        self.capable = _stable_unit("cap|" + key) < ceiling
        self._candidates = enumerate_logic_edits(code) if self.capable else []
        self.rng.shuffle(self._candidates)
        self._cursor = 0

    def step(self, code: str, feedback: str) -> RepairStep:
        """Propose the next candidate logic edit given waveform feedback."""
        if not self.capable:
            return RepairStep(
                thought="The waveform comparison is hard to interpret; the "
                "implementation looks consistent with the description to me.",
                code=code,
                declared_done=True,
            )
        while self._cursor < len(self._candidates):
            candidate = self._candidates[self._cursor]
            self._cursor += 1
            if candidate != code:
                return RepairStep(
                    thought="The mismatching samples suggest a polarity or "
                    "operator slip; I will try a targeted one-line change "
                    "and re-simulate.",
                    code=candidate,
                )
        return RepairStep(
            thought="I have exhausted the plausible single-site edits "
            "without matching the expected waveform.",
            code=code,
            declared_done=True,
        )
