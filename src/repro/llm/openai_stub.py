"""OpenAI-backed repair model: documented stub.

The paper runs everything against *gpt-3.5-turbo-16k-0613* via the
OpenAI API.  This environment has no network access, so this module only
documents the real-API path and fails loudly if used.  The prompts below
are faithful to Fig. 2 of the paper, so wiring in an actual client is a
matter of implementing :class:`LLMClient.complete`.
"""

from __future__ import annotations

import re

from ..errors import LLMError
from ..rag.database import GuidanceEntry
from .base import ChatMessage, LLMClient, RepairStep

ONE_SHOT_SYSTEM_PROMPT = (
    "Implement the Verilog module based on the following description. "
    "Assume that signals are positive clock/clk edge triggered unless "
    "otherwise stated."
)

REACT_SYSTEM_PROMPT = (
    "Solve a task with interleaving Thought, Action, Observation steps. "
    "Thought can reason about the current situation, and Action can be "
    "the following types:\n"
    "(1) Compiler[code], which compiles the input code and provide error "
    "message if there is syntax error.\n"
    "(2) Finish[answer], which returns the answer and finished the task.\n"
    "(3) RAG[logs], input the compiler log and retrieve expert solutions "
    "to fix the syntax error."
)


def build_repair_messages(
    code: str, feedback: str, guidance: list[GuidanceEntry]
) -> list[ChatMessage]:
    """The messages an API-backed session would send per turn."""
    guidance_text = "\n".join(
        f"- {g.guidance}" + (f"\n  e.g. {g.demonstration}" if g.demonstration else "")
        for g in guidance
    )
    user = (
        "What is the syntax error in the given Verilog module implementation "
        "and how to fix it?\n\n"
        f"```verilog\n{code}\n```\n\n"
        f"Compiler feedback:\n{feedback or 'Correct the syntax error in the code.'}\n"
    )
    if guidance_text:
        user += f"\nHuman expert guidance:\n{guidance_text}\n"
    user += "\nRespond with a Thought line and the full corrected module."
    return [
        ChatMessage(role="system", content=REACT_SYSTEM_PROMPT),
        ChatMessage(role="user", content=user),
    ]


def parse_repair_reply(reply: str, fallback_code: str) -> RepairStep:
    """Extract the thought and code from a model reply."""
    thought_match = re.search(r"Thought.*?:\s*(.+)", reply)
    thought = thought_match.group(1).strip() if thought_match else reply[:200]
    code_match = re.search(r"```(?:verilog)?\n(.*?)```", reply, re.DOTALL)
    code = code_match.group(1) if code_match else fallback_code
    return RepairStep(thought=thought, code=code)


class OpenAIRepairModel:
    """Repair model that would call the OpenAI API.  Unusable offline."""

    def __init__(self, client: LLMClient | None = None, model: str = "gpt-3.5-turbo-16k-0613"):
        self.client = client
        self.model = model
        self.name = model

    def start(self, code: str, flavor: str, use_rag: bool):
        if self.client is None:
            raise LLMError(
                "OpenAIRepairModel needs an LLMClient; this offline "
                "reproduction uses repro.llm.SimulatedLLM instead "
                "(see DESIGN.md, substitution table)."
            )
        return _OpenAISession(self.client)


class _OpenAISession:
    def __init__(self, client: LLMClient):
        self.client = client

    def step(self, code: str, feedback: str, guidance: list[GuidanceEntry]) -> RepairStep:
        messages = build_repair_messages(code, feedback, guidance)
        reply = self.client.complete(messages)
        return parse_repair_reply(reply, fallback_code=code)
