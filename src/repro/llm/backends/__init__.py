"""Raw chat-completion backends for the LLM pool.

Every backend implements the :class:`repro.llm.base.LLMClient` protocol
so the pool (:mod:`repro.llm.pool`) can treat them interchangeably and
wrap each one in the existing ``Retrying*`` / ``Chaos*`` runtime layers:

* :class:`SimulatedChatClient` -- the offline stand-in: a raw-client
  adapter that drives :class:`repro.llm.SimulatedLLM` through the real
  chat-message wire format, so pooled runs stay bit-identical to direct
  simulated runs and CI stays hermetic;
* :class:`OpenAIChatClient` -- the real-API adapter (urllib, no extra
  dependencies), offline-guarded: it raises
  :class:`repro.errors.LLMError` unless an API key is configured.
"""

from .openai import OpenAIChatClient
from .simulated import (
    SimulatedChatClient,
    build_pool_messages,
    parse_pool_reply,
    render_repair_reply,
)

__all__ = [
    "OpenAIChatClient",
    "SimulatedChatClient",
    "build_pool_messages",
    "parse_pool_reply",
    "render_repair_reply",
]
