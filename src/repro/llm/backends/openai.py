"""OpenAI-compatible chat backend (real API path, offline-guarded).

The paper runs against *gpt-3.5-turbo-16k-0613* / *gpt-4* over the
OpenAI chat-completions API.  This adapter implements that call with
the standard library only (``urllib``), so the pool can route to a
real provider when credentials exist -- and fails loudly, **before**
any network I/O, when they do not (this reproduction's CI environment
is offline by design; the simulated adapter carries those runs).

Transient transport faults (HTTP 408/409/429/5xx, socket errors) are
raised as :class:`repro.errors.LLMTimeoutError` so the pool's existing
``Retrying*`` wrapper and failover chain handle them exactly like an
injected chaos outage.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request
from typing import Optional

from ...errors import LLMError, LLMTimeoutError
from ..base import ChatMessage

DEFAULT_BASE_URL = "https://api.openai.com/v1"

#: HTTP statuses worth retrying (rate limits, conflicts, server-side).
_RETRYABLE_STATUS = frozenset({408, 409, 429, 500, 502, 503, 504})


class OpenAIChatClient:
    """:class:`~repro.llm.base.LLMClient` over the OpenAI REST API.

    The key is read from ``api_key`` or the ``OPENAI_API_KEY``
    environment variable at call time; without one, ``complete`` raises
    :class:`~repro.errors.LLMError` immediately (no socket is opened),
    which is what keeps this adapter safe to construct in offline runs.
    """

    def __init__(
        self,
        model: str = "gpt-3.5-turbo-16k-0613",
        api_key: Optional[str] = None,
        base_url: str = DEFAULT_BASE_URL,
        request_timeout: float = 60.0,
    ):
        self.model = model
        self.api_key = api_key
        self.base_url = base_url.rstrip("/")
        self.request_timeout = request_timeout

    def with_seed(self, seed: int) -> "OpenAIChatClient":
        """API backends have no sampling seed to rotate; returns self."""
        return self

    def _key(self) -> str:
        key = self.api_key or os.environ.get("OPENAI_API_KEY", "")
        if not key:
            raise LLMError(
                f"OpenAIChatClient({self.model!r}) has no API key: set "
                "OPENAI_API_KEY or pass api_key=.  Offline runs should "
                "route to SimulatedChatClient tiers instead "
                "(e.g. --llm-pool cheap=gpt-3.5-sim,strong=gpt-4-sim)."
            )
        return key

    def complete(self, messages: list[ChatMessage], temperature: float = 0.4) -> str:
        """One chat completion over HTTP."""
        key = self._key()  # fail fast before any network I/O
        payload = json.dumps(
            {
                "model": self.model,
                "temperature": temperature,
                "messages": [
                    {"role": m.role, "content": m.content} for m in messages
                ],
            }
        ).encode()
        request = urllib.request.Request(
            f"{self.base_url}/chat/completions",
            data=payload,
            headers={
                "Content-Type": "application/json",
                "Authorization": f"Bearer {key}",
            },
            method="POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.request_timeout
            ) as response:
                body = json.loads(response.read().decode())
        except urllib.error.HTTPError as exc:
            if exc.code in _RETRYABLE_STATUS:
                raise LLMTimeoutError(
                    f"{self.model}: HTTP {exc.code} from {self.base_url}"
                ) from exc
            raise LLMError(
                f"{self.model}: HTTP {exc.code} from {self.base_url}"
            ) from exc
        except (urllib.error.URLError, TimeoutError, OSError) as exc:
            raise LLMTimeoutError(f"{self.model}: transport error: {exc}") from exc
        try:
            return body["choices"][0]["message"]["content"]
        except (KeyError, IndexError, TypeError) as exc:
            raise LLMError(
                f"{self.model}: malformed completion response"
            ) from exc
