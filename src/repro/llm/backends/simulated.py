"""Raw-client adapter over the simulated repair model.

The pool (:mod:`repro.llm.pool`) speaks the raw
:class:`~repro.llm.base.LLMClient` surface -- the exact wire format an
API-backed backend would see, built from the paper-faithful prompts in
:mod:`repro.llm.openai_stub`.  This module closes the loop offline: it
round-trips a pooled repair turn through real chat messages and back
into a live :class:`~repro.llm.simulated.SimulatedRepairSession`, so

* pooled runs are **bit-identical** to direct simulated runs (the
  adapter reconstructs the session's exact inputs -- code, feedback,
  guidance entries -- from the message text), and
* every piece of pool machinery (routing, escalation, hedging, chaos
  outages, retry) exercises the same message-level seam a production
  deployment would, with no network in sight.

Wire format, per turn:

* request -- :func:`build_pool_messages`: the two paper-prompt messages
  from :func:`repro.llm.openai_stub.build_repair_messages` plus one
  extra ``system`` header carrying the session token, feedback flavour
  and RAG bit (the state an HTTP-era session would keep server-side);
* reply -- :func:`render_repair_reply`: a ReAct-shaped completion
  (``Thought:`` line, ``Action: Finish[answer]``/``Compiler[code]``,
  a ``Used-Guidance`` count, and the full revised module in a
  ```` ```verilog ```` fence) parsed back by :func:`parse_pool_reply`.

Guidance entries survive the round trip by reverse lookup against the
default guidance database (the retriever only ever surfaces entries
from it); unknown guidance text degrades to a synthetic entry with the
same text, which is all the simulated session reads.
"""

from __future__ import annotations

import hashlib
import re
import threading
from collections import OrderedDict
from typing import Optional

from ...rag.database import GuidanceEntry
from ..base import ChatMessage, RepairStep
from ..openai_stub import build_repair_messages
from ..simulated import SimulatedLLM

#: Marks the extra system message that carries pooled-session state.
SESSION_HEADER_PREFIX = "X-Repro-Pool-Session:"

#: The user-prompt placeholder for "no compiler feedback" (mirrors
#: build_repair_messages); the adapter maps it back to empty feedback.
NO_FEEDBACK_SENTINEL = "Correct the syntax error in the code."

_HEADER_RE = re.compile(
    r"token=(?P<token>\S+)\s+flavor=(?P<flavor>\S+)\s+rag=(?P<rag>[01])"
)
_CODE_RE = re.compile(r"```verilog\n(.*?)\n```\n\nCompiler feedback:", re.DOTALL)
_FEEDBACK_RE = re.compile(
    r"Compiler feedback:\n(.*?)\n\n(?:Human expert guidance:|Respond with a Thought)",
    re.DOTALL,
)
_GUIDANCE_RE = re.compile(
    r"Human expert guidance:\n(.*?)\n\nRespond with a Thought", re.DOTALL
)
_REPLY_CODE_RE = re.compile(r"```verilog\n(.*)\n```\s*\Z", re.DOTALL)
_USED_GUIDANCE_RE = re.compile(r"Used-Guidance:\s*(\d+)")
_THOUGHT_RE = re.compile(r"Thought:\s*(.*)")


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def build_pool_messages(
    code: str,
    feedback: str,
    guidance: list[GuidanceEntry],
    *,
    session: str,
    flavor: str,
    use_rag: bool,
) -> list[ChatMessage]:
    """The pooled repair turn as raw chat messages.

    Identical to the paper prompts plus one session-header system
    message, inserted between the ReAct system prompt and the user
    turn, that lets a stateful backend (the simulated adapter) associate
    consecutive turns of one debugging conversation.
    """
    base = build_repair_messages(code, feedback, guidance)
    header = ChatMessage(
        role="system",
        content=(
            f"{SESSION_HEADER_PREFIX} token={session} "
            f"flavor={flavor} rag={int(use_rag)}"
        ),
    )
    return [base[0], header, *base[1:]]


def render_repair_reply(step: RepairStep) -> str:
    """One model turn as completion text (the adapter's reply format).

    Thoughts are flattened to one line so ``Thought:`` parses with a
    line-anchored regex; the simulated model only emits single-line
    thoughts, so nothing is lost in practice.
    """
    action = "Finish[answer]" if step.declared_done else "Compiler[code]"
    thought = step.thought.replace("\n", " ")
    return (
        f"Thought: {thought}\n"
        f"Action: {action}\n"
        f"Used-Guidance: {len(step.used_guidance)}\n"
        f"```verilog\n{step.code}\n```"
    )


def parse_pool_reply(
    reply: str, guidance: Optional[list[GuidanceEntry]] = None
) -> RepairStep:
    """Reply text back into a :class:`~repro.llm.base.RepairStep`.

    ``used_guidance`` is reconstructed as a prefix of the *caller's*
    guidance list (the pooled session still holds the real entries), so
    it round-trips exactly.  A reply with no code fence -- a garbled
    completion, e.g. a chaos ``garbage`` fault at the client seam --
    becomes a step whose code *is* the garbled text: the compiler then
    rejects it, which keeps the agent loop honest instead of silently
    re-submitting the previous candidate.
    """
    thought_match = _THOUGHT_RE.search(reply)
    thought = (
        thought_match.group(1).strip()
        if thought_match
        else f"(pool) unparseable model reply: {reply[:120]}"
    )
    used_match = _USED_GUIDANCE_RE.search(reply)
    used = int(used_match.group(1)) if used_match else 0
    code_match = _REPLY_CODE_RE.search(reply)
    code = code_match.group(1) if code_match else reply
    return RepairStep(
        thought=thought,
        code=code,
        declared_done="Action: Finish[" in reply,
        used_guidance=tuple((guidance or [])[:used]),
    )


# -- guidance round trip -----------------------------------------------------

_guidance_lookup: Optional[dict] = None
_guidance_lookup_lock = threading.Lock()


def _lookup_guidance(guidance_text: str, demonstration: str) -> GuidanceEntry:
    """Reverse-map rendered guidance text to the real database entry.

    The retriever only surfaces entries of the default database, so the
    lookup recovers the exact object (category included) and keeps the
    simulated session's behaviour bit-identical to the direct path.
    Unknown text (a custom database) degrades to a synthetic entry
    carrying the same strings -- everything the session actually reads.
    """
    global _guidance_lookup
    with _guidance_lookup_lock:
        if _guidance_lookup is None:
            from ...rag.guidance_data import build_default_database

            _guidance_lookup = {}
            for entry in build_default_database():
                _guidance_lookup.setdefault(
                    (entry.guidance, entry.demonstration), entry
                )
        found = _guidance_lookup.get((guidance_text, demonstration))
    if found is not None:
        return found
    return GuidanceEntry(
        category=None,  # type: ignore[arg-type] -- synthetic fallback
        compiler="",
        log_pattern="",
        guidance=guidance_text,
        demonstration=demonstration,
    )


def _parse_guidance_block(block: str) -> list[GuidanceEntry]:
    entries: list[tuple[str, str]] = []
    for line in block.split("\n"):
        if line.startswith("- "):
            entries.append((line[2:], ""))
        elif line.startswith("  e.g. ") and entries:
            text, _ = entries[-1]
            entries[-1] = (text, line[len("  e.g. "):])
    return [_lookup_guidance(text, demo) for text, demo in entries]


class SimulatedChatClient:
    """:class:`~repro.llm.base.LLMClient` over the simulated model.

    Stateless on the wire, stateful inside (like a provider keeping
    per-conversation context): live
    :class:`~repro.llm.simulated.SimulatedRepairSession` objects are
    kept per session token, created lazily at the token's first
    ``complete`` call from that call's code -- which is exactly the
    start code both agents pass, so the session rng seeds identically
    to the direct path.
    """

    def __init__(self, tier: str = "gpt-3.5-sim", seed: int = 0,
                 max_sessions: int = 1024):
        self.tier = tier
        self.seed = seed
        self.max_sessions = max_sessions
        self._sessions: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def with_seed(self, seed: int) -> "SimulatedChatClient":
        """A fresh adapter (no live sessions) at a different seed."""
        return SimulatedChatClient(self.tier, seed, self.max_sessions)

    def complete(self, messages: list[ChatMessage], temperature: float = 0.4) -> str:
        """One pooled repair turn: parse, step the live session, render."""
        header = None
        user: Optional[str] = None
        for message in messages:
            if message.role == "system" and message.content.startswith(
                SESSION_HEADER_PREFIX
            ):
                header = _HEADER_RE.search(message.content)
            elif message.role == "user":
                user = message.content
        if header is None or user is None:
            raise ValueError(
                "SimulatedChatClient requires pool-format messages "
                "(build_pool_messages): session header or user turn missing"
            )
        code_match = _CODE_RE.search(user)
        if code_match is None:
            raise ValueError("pool message has no ```verilog fence")
        code = code_match.group(1)
        feedback_match = _FEEDBACK_RE.search(user)
        feedback = feedback_match.group(1) if feedback_match else ""
        if feedback == NO_FEEDBACK_SENTINEL:
            feedback = ""
        guidance_match = _GUIDANCE_RE.search(user)
        guidance = (
            _parse_guidance_block(guidance_match.group(1))
            if guidance_match
            else []
        )

        token = header.group("token")
        with self._lock:
            session = self._sessions.get(token)
            if session is not None:
                self._sessions.move_to_end(token)
            else:
                model = SimulatedLLM(
                    tier=self.tier, temperature=temperature, seed=self.seed
                )
                session = model.start(
                    code,
                    flavor=header.group("flavor"),
                    use_rag=header.group("rag") == "1",
                )
                self._sessions[token] = session
                while len(self._sessions) > self.max_sessions:
                    self._sessions.popitem(last=False)
        # Step outside the lock: a token is only ever stepped by its own
        # trial, so concurrent trials proceed in parallel.
        step = session.step(code, feedback, guidance)
        return render_repair_reply(step)

    def __getstate__(self) -> dict:
        # Live sessions and the lock stay behind: an adapter travelling
        # into a process-pool worker starts its conversations fresh
        # (workers rebuild their own sessions deterministically).
        return {
            "tier": self.tier,
            "seed": self.seed,
            "max_sessions": self.max_sessions,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["tier"], state["seed"], state["max_sessions"])
