"""Parsing compiler feedback *text* back into structured beliefs.

The simulated LLM never sees our internal Diagnostic objects -- only the
rendered log text, exactly like the real model in the paper.  This
module is the "reading comprehension" half of the repair model: how much
it can recover depends entirely on the feedback flavour, which is what
drives the feedback-quality ablation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from ...diagnostics import QUARTUS_TAG_TO_CATEGORY, ErrorCategory


@dataclass(frozen=True)
class ParsedError:
    """One error the model believes is present."""

    category: Optional[ErrorCategory]
    line: Optional[int] = None
    #: Named details scraped from the message (signal names, indices...).
    details: dict = field(default_factory=dict)

    @property
    def is_specific(self) -> bool:
        return self.category is not None


def detect_flavor(feedback: str) -> str:
    """Classify a feedback string as quartus / iverilog / simple."""
    if re.search(r"Error \(\d+\)", feedback):
        return "quartus"
    if re.search(r"^\S+\.s?v:\d+:", feedback, re.MULTILINE) or "I give up." in feedback:
        return "iverilog"
    return "simple"


def parse_feedback(feedback: str) -> list[ParsedError]:
    """Extract structured errors from a rendered compiler log."""
    flavor = detect_flavor(feedback)
    if flavor == "quartus":
        return _parse_quartus(feedback)
    if flavor == "iverilog":
        return _parse_iverilog(feedback)
    return []


def _parse_quartus(feedback: str) -> list[ParsedError]:
    out: list[ParsedError] = []
    pattern = re.compile(
        r"Error \((\d+)\): Verilog HDL error at [^(]+\((\d+)\): (.*?) File:"
    )
    for match in pattern.finditer(feedback):
        tag = int(match.group(1))
        line = int(match.group(2))
        message = match.group(3)
        category = QUARTUS_TAG_TO_CATEGORY.get(tag)
        out.append(
            ParsedError(category=category, line=line, details=_scrape(message))
        )
    return out


_IVERILOG_PATTERNS: list[tuple[re.Pattern, Optional[ErrorCategory]]] = [
    (re.compile(r"Unable to bind wire/reg/memory `(?P<name>\w+)'"),
     ErrorCategory.UNDECLARED_ID),
    (re.compile(r"Unknown module type: (?P<name>\w+)"),
     ErrorCategory.UNDECLARED_ID),
    (re.compile(r"Index (?P<name>\w+)\[(?P<index>-?\d+)\] is out of range"),
     ErrorCategory.INDEX_RANGE),
    (re.compile(r"(?P<name>\w+) is not a valid l-value"),
     ErrorCategory.INVALID_LVALUE),
    (re.compile(r"Malformed number: (?P<literal>\S+)"),
     ErrorCategory.BAD_LITERAL),
    (re.compile(r"port ``(?P<port>\w+)'' is not a port of (?P<module>\w+)"),
     ErrorCategory.PORT_MISMATCH),
    (re.compile(r"`(?P<name>\w+)' has already been declared"),
     ErrorCategory.DUPLICATE_DECL),
    (re.compile(r"syntax error"), None),  # ambiguous
]


def _parse_iverilog(feedback: str) -> list[ParsedError]:
    out: list[ParsedError] = []
    for line_text in feedback.split("\n"):
        loc = re.match(r"\S+:(\d+):", line_text)
        line = int(loc.group(1)) if loc else None
        for pattern, category in _IVERILOG_PATTERNS:
            match = pattern.search(line_text)
            if match is None:
                continue
            details = {k: v for k, v in match.groupdict().items() if v is not None}
            if "index" in details:
                details["index"] = int(details["index"])
            out.append(ParsedError(category=category, line=line, details=details))
            break
    return out


def _scrape(message: str) -> dict:
    """Pull names/indices out of a Quartus message body."""
    details: dict = {}
    quoted = re.findall(r'"(\w+)"', message)
    if quoted:
        details["name"] = quoted[0]
        if "does not exist in module" in message and len(quoted) >= 2:
            details["port"] = quoted[0]
            details["module"] = quoted[1]
    index = re.search(r"index (-?\d+)", message)
    if index:
        details["index"] = int(index.group(1))
    rng = re.search(r"declared range (\[[^\]]+\])", message)
    if rng:
        details["range"] = rng.group(1)
    literal = re.search(r"literal (\S+?)\.", message)
    if literal:
        details["literal"] = literal.group(1)
    near = re.search(r"near text (.+?)\.", message)
    if near:
        details["near"] = near.group(1)
    op = re.search(r'operator "([^"]+)"', message)
    if op:
        details["op"] = op.group(1)
    expected = re.search(r'expecting "(\w+)"', message)
    if expected:
        details["expected"] = expected.group(1)
    before = re.search(r'missing ";" before (.+?)\.', message)
    if before:
        details["before"] = before.group(1)
    return details
