"""Candidate edits for *logic* (simulation) debugging — paper §5.

Unlike syntax repair, there is no compiler message pointing at the bug:
the model only sees a waveform-style mismatch report.  What an LLM does
in practice is propose small semantic edits (flip a polarity, swap an
operator, adjust a constant).  :func:`enumerate_logic_edits` produces
that candidate space deterministically; the simulated debugger walks it,
and the agent's simulation feedback decides which candidate survives.
"""

from __future__ import annotations

import re

from ...diagnostics import compile_source

_MAX_EDITS = 48


def _swap_sites(code: str, pattern: str, replace) -> list[str]:
    out = []
    for match in re.finditer(pattern, code):
        replacement = replace(match)
        if replacement is None:
            continue
        candidate = code[: match.start()] + replacement + code[match.end() :]
        if candidate != code:
            out.append(candidate)
    return out


def enumerate_logic_edits(code: str) -> list[str]:
    """All single-site semantic edits, deduplicated, compile-verified."""
    candidates: list[str] = []

    candidates += _swap_sites(
        code, r" ([&|]) ",
        lambda m: f" {'|' if m.group(1) == '&' else '&'} ",
    )
    candidates += _swap_sites(
        code, r" ([+-]) ",
        lambda m: f" {'-' if m.group(1) == '+' else '+'} ",
    )
    comparison_flip = {"<": ">", ">": "<", "==": "!=", "!=": "=="}
    candidates += _swap_sites(
        code, r" (<|>|==|!=) ",
        lambda m: f" {comparison_flip[m.group(1)]} ",
    )
    candidates += _swap_sites(
        code, r"if \((\w+)\)", lambda m: f"if (!{m.group(1)})"
    )
    candidates += _swap_sites(
        code, r"if \(!(\w+)\)", lambda m: f"if ({m.group(1)})"
    )
    candidates += _swap_sites(
        code, r"(negedge|posedge) clk",
        lambda m: f"{'posedge' if m.group(1) == 'negedge' else 'negedge'} clk",
    )
    candidates += _swap_sites(
        code, r"\? ([\w\[\]':]+) : ([\w\[\]':]+)",
        lambda m: f"? {m.group(2)} : {m.group(1)}",
    )
    candidates += _swap_sites(
        code, r"= ~\((.+?)\);", lambda m: f"= {m.group(1)};"
    )
    candidates += _swap_sites(
        code, r"= ([\w\[\]]+);", lambda m: f"= ~{m.group(1)};"
    )
    # Off-by-one constant adjustments in both directions.
    for delta in (+1, -1):
        candidates += _swap_sites(
            code, r"(\d+)'d(\d+)",
            lambda m, d=delta: (
                f"{m.group(1)}'d{(int(m.group(2)) + d) % (1 << int(m.group(1)))}"
            ),
        )

    seen: set[str] = set()
    unique: list[str] = []
    for candidate in candidates:
        if candidate in seen:
            continue
        seen.add(candidate)
        if compile_source(candidate).ok:
            unique.append(candidate)
        if len(unique) >= _MAX_EDITS:
            break
    return unique
