"""Repair strategies: real source-level fixes, one family per category.

Each strategy has a *correct* path (what a competent engineer -- or an
LLM on a good day -- would do) and a *botched* path (a plausible wrong
edit: declaring the missing clock as an internal reg, deleting the
offending line, widening a vector instead of fixing the index...).  The
simulated LLM chooses between them according to its skill knobs; the
compiler then judges the result for real.
"""

from __future__ import annotations

import difflib
import random
import re
from typing import Optional

from ...diagnostics import ErrorCategory
from .diagnosis import ParsedError

_CLOCKISH = ("clk", "clock", "reset", "areset", "rst", "arst", "en", "enable")


# ---------------------------------------------------------------------------
# Small text utilities
# ---------------------------------------------------------------------------


def _lines(code: str) -> list[str]:
    return code.split("\n")


def _line_text(code: str, line: Optional[int]) -> str:
    if line is None:
        return ""
    lines = _lines(code)
    if 1 <= line <= len(lines):
        return lines[line - 1]
    return ""


def _replace_line(code: str, line: int, new_text: str) -> str:
    lines = _lines(code)
    if 1 <= line <= len(lines):
        lines[line - 1] = new_text
    return "\n".join(lines)


def _insert_before_line(code: str, line: int, new_text: str) -> str:
    lines = _lines(code)
    index = max(0, min(line - 1, len(lines)))
    lines.insert(index, new_text)
    return "\n".join(lines)


def declared_names(code: str) -> list[str]:
    """Signals declared anywhere in the module (ports + nets)."""
    names: list[str] = []
    for match in re.finditer(
        r"\b(?:input|output|inout|wire|reg|logic|integer)\b[^;,()]*?(\w+)\s*(?:[;,)\[=]|$)",
        code,
    ):
        name = match.group(1)
        if name not in names and name not in (
            "reg", "wire", "logic", "signed", "integer",
        ):
            names.append(name)
    return names


def _add_port(code: str, name: str) -> Optional[str]:
    """Insert ``input name,`` as the first port of the first module."""
    match = re.search(r"module\s+\w+\s*\(", code)
    if match is None:
        return None
    return code[: match.end()] + f"\n  input {name}," + code[match.end() :]


# ---------------------------------------------------------------------------
# Correct-path strategies
# ---------------------------------------------------------------------------


_KEYWORDS = ("assign", "module", "endmodule", "begin", "end", "wire", "reg",
             "always", "input", "output", "case", "endcase", "integer")


def fix_undeclared(code: str, error: ParsedError, rng: random.Random) -> Optional[str]:
    """Correct repair: declare/rename the missing identifier (clk -> port)."""
    name = error.details.get("name")
    if not name:
        return None
    # A "missing signal" that is really a misspelled keyword (asign,
    # modul, begn...): fix the spelling, do not declare it.
    keyword = difflib.get_close_matches(name, _KEYWORDS, n=1, cutoff=0.8)
    if keyword and name not in _KEYWORDS:
        return re.sub(rf"\b{re.escape(name)}\b", keyword[0], code)
    if any(name.startswith(p) or name in _CLOCKISH for p in ("clk", "clock")):
        return _add_port(code, name)
    close = difflib.get_close_matches(name, declared_names(code), n=1, cutoff=0.6)
    if close:
        return re.sub(rf"\b{re.escape(name)}\b", close[0], code)
    if name in _CLOCKISH:
        return _add_port(code, name)
    # Last resort: declare it.
    match = re.search(r"module[^;]*;", code, re.DOTALL)
    if match is None:
        return None
    return code[: match.end()] + f"\nwire {name};" + code[match.end() :]


def fix_index_range(code: str, error: ParsedError, rng: random.Random) -> Optional[str]:
    """Correct repair: fix the loop bound or clamp the index into range."""
    name = error.details.get("name")
    index = error.details.get("index")
    if name is None or index is None:
        return None
    decl = re.search(rf"\[(\d+):0\]\s*{re.escape(name)}\b", code)
    msb = int(decl.group(1)) if decl else None
    # First preference: an off-by-one loop bound that produced this index.
    loop = re.search(rf"(<=)\s*{index}\b", code)
    if loop is not None and index > 0:
        return code[: loop.start(1)] + "<" + code[loop.end(1) :]
    if msb is None:
        return None
    # Otherwise clamp the literal index back into range.
    target = msb if index > msb else 0
    site = re.search(rf"{re.escape(name)}\s*\[\s*{index}\s*\]", code)
    if site is None:
        return None
    return code[: site.start()] + f"{name}[{target}]" + code[site.end() :]


def fix_invalid_lvalue(code: str, error: ParsedError, rng: random.Random) -> Optional[str]:
    """Correct repair: add ``reg`` or drop the assign driving an input."""
    name = error.details.get("name")
    if not name:
        return None
    # Assigning an input port?  Remove the offending continuous assign.
    if re.search(rf"input\b[^;,)]*\b{re.escape(name)}\b", code):
        new = re.sub(rf"\n\s*assign\s+{re.escape(name)}\s*=[^;]*;", "", code, count=1)
        return new if new != code else None
    # Output/wire written procedurally: add the reg keyword.
    port = re.search(rf"\boutput\s+(\[[^\]]+\]\s*)?{re.escape(name)}\b", code)
    if port is not None:
        rng_part = port.group(1) or ""
        return (
            code[: port.start()]
            + f"output reg {rng_part}{name}"
            + code[port.end() :]
        )
    net = re.search(rf"\bwire\s+(\[[^\]]+\]\s*)?{re.escape(name)}\b", code)
    if net is not None:
        rng_part = net.group(1) or ""
        return code[: net.start()] + f"reg {rng_part}{name}" + code[net.end() :]
    return None


def fix_missing_semicolon(code: str, error: ParsedError, rng: random.Random) -> Optional[str]:
    """Correct repair: terminate the reported statement."""
    line = error.line
    if line is None:
        return None
    text = _line_text(code, line)
    stripped = text.strip()
    if stripped in ("end", "endmodule", "begin", "endcase", "endfunction", ""):
        return None
    if stripped.endswith((";", "begin", "end", ")")) and not _needs_semi(text):
        return None
    return _replace_line(code, line, text.rstrip() + ";")


def _needs_semi(text: str) -> bool:
    stripped = text.rstrip()
    return bool(stripped) and not stripped.endswith(";") and (
        "=" in stripped or "assign" in stripped
    )


def fix_unbalanced(code: str, error: ParsedError, rng: random.Random) -> Optional[str]:
    """Correct repair: insert the expected end/endcase/endmodule."""
    expected = error.details.get("expected", "end")
    line = error.line
    if line is None:
        # Fall back: insert before the final endmodule.
        idx = code.rfind("endmodule")
        if idx == -1:
            return None
        return code[:idx] + f"{expected}\n" + code[idx:]
    return _insert_before_line(code, line, expected)


def fix_bad_literal(code: str, error: ParsedError, rng: random.Random) -> Optional[str]:
    """Correct repair: rewrite illegal literal digits for the base."""
    literal = error.details.get("literal")
    if literal:
        site = code.find(literal)
        if site != -1:
            return code[:site] + _repair_literal(literal) + code[site + len(literal):]
    # No literal text in the message: scan for a malformed literal.
    for match in re.finditer(r"\d+'[bdh][0-9a-zA-Z]+", code):
        repaired = _repair_literal(match.group(0))
        if repaired != match.group(0):
            return code[: match.start()] + repaired + code[match.end() :]
    return None


def _repair_literal(literal: str) -> str:
    match = re.match(r"(\d+)'s?([bdhoq])(\w*)", literal)
    if match is None:
        return literal
    width, base, digits = match.groups()
    if base == "q":  # unknown base character: assume hex was intended
        base = "h"
    legal = {"b": "01xz", "d": "0123456789", "h": "0123456789abcdef",
             "o": "01234567"}[base]
    fixed = "".join(d if d.lower() in legal else "0" for d in digits)
    return f"{width}'{base}{fixed or '0'}"


def fix_port_mismatch(code: str, error: ParsedError, rng: random.Random) -> Optional[str]:
    """Correct repair: rename the connection to the closest real port."""
    port = error.details.get("port") or error.details.get("name")
    module = error.details.get("module")
    if not port:
        return None
    candidates: list[str] = []
    if module:
        decl = re.search(
            rf"module\s+{re.escape(module)}\s*\((.*?)\);", code, re.DOTALL
        )
        if decl:
            candidates = re.findall(r"(\w+)\s*[,)]?\s*$", decl.group(1), re.MULTILINE)
            candidates = re.findall(
                r"(?:input|output|inout)[^,)]*?(\w+)\s*(?:,|$)", decl.group(1)
            )
    if not candidates:
        candidates = declared_names(code)
    close = difflib.get_close_matches(port, candidates, n=1, cutoff=0.5)
    if not close:
        return None
    site = re.search(rf"\.{re.escape(port)}\s*\(", code)
    if site is None:
        return None
    return code[: site.start()] + f".{close[0]}(" + code[site.end() :]


def fix_duplicate(code: str, error: ParsedError, rng: random.Random) -> Optional[str]:
    """Correct repair: delete the redundant declaration."""
    name = error.details.get("name")
    if not name:
        return None
    pattern = re.compile(
        rf"^\s*(?:reg|wire|logic|integer)\b[^;]*\b{re.escape(name)}\b[^;]*;\s*$",
        re.MULTILINE,
    )
    matches = list(pattern.finditer(code))
    if len(matches) >= 2:
        second = matches[1]
        return code[: second.start()] + code[second.end() :]
    if len(matches) == 1:
        # Port + net duplicate ('output reg q' plus 'reg q;').
        return code[: matches[0].start()] + code[matches[0].end() :]
    return None


def fix_c_style(code: str, error: ParsedError, rng: random.Random) -> Optional[str]:
    """Correct repair: expand ++/--/compound assignments."""
    inc = re.search(r"(\w+)\s*\+\+", code)
    if inc:
        return code[: inc.start()] + f"{inc.group(1)} = {inc.group(1)} + 1" + code[inc.end() :]
    dec = re.search(r"(\w+)\s*--", code)
    if dec:
        return code[: dec.start()] + f"{dec.group(1)} = {dec.group(1)} - 1" + code[dec.end() :]
    compound = re.search(r"(\w+)\s*([+\-*/]|<<|>>)=\s*", code)
    if compound:
        name, op = compound.group(1), compound.group(2)
        return code[: compound.start()] + f"{name} = {name} {op} " + code[compound.end() :]
    return None


def fix_event_expr(code: str, error: ParsedError, rng: random.Random) -> Optional[str]:
    """Correct repair: restore a sane sensitivity list."""
    has_clk = re.search(r"\binput\s+(?:\[[^\]]+\]\s*)?clk\b", code) is not None
    if "@(posedge)" in code:
        return code.replace(
            "@(posedge)", "@(posedge clk)" if has_clk else "@(*)", 1
        )
    if "@()" in code:
        return code.replace("@()", "@(*)", 1)
    bare = re.search(r"\balways\s+(?!@)", code)
    if bare:
        ctrl = "@(posedge clk) " if has_clk and "<=" in code else "@(*) "
        return code[: bare.end()] + ctrl + code[bare.end() :]
    return None


def fix_ambiguous_syntax(code: str, error: ParsedError, rng: random.Random) -> Optional[str]:
    """The hard case: a bare 'syntax error' (iverilog) or 'syntax error
    near text' (Quartus).  Try the usual suspects around the reported
    line."""
    line = error.line
    text = _line_text(code, line)
    # A malformed literal that split into number + stray identifier
    # (e.g. 8'hFg lexes as 8'hF then g).
    stray = re.search(r"(\d+'[bdh][0-9a-fA-FxXzZ]*)([g-wyG-WY])", code)
    if stray is not None:
        return code[: stray.start()] + stray.group(1) + code[stray.end() :]
    # Misspelled keywords.
    for wrong, right in (("asign", "assign"), ("modul ", "module "), ("begn", "begin")):
        if wrong in code:
            return code.replace(wrong, right, 1)
    # assign x == expr;
    doubled = re.search(r"(assign\s+[\w\[\]:]+\s*)==", code)
    if doubled:
        return code[: doubled.end(1)] + "=" + code[doubled.end() :]
    # Missing semicolon on the previous line.
    if line is not None and line > 1:
        prev = _line_text(code, line - 1)
        if _needs_semi(prev):
            return _replace_line(code, line - 1, prev.rstrip() + ";")
    if _needs_semi(text):
        return _replace_line(code, line, text.rstrip() + ";")
    # C-style leftovers.
    fixed = fix_c_style(code, error, rng)
    if fixed is not None:
        return fixed
    return None


# ---------------------------------------------------------------------------
# Botched-path strategies: plausible but wrong edits.
# ---------------------------------------------------------------------------


def botch_undeclared(code: str, error: ParsedError, rng: random.Random) -> Optional[str]:
    """Botched repair: declare the missing clock as a dead internal reg."""
    name = error.details.get("name")
    if not name:
        return None
    # Declare the missing clock internally: compiles, never toggles.
    match = re.search(r"module[^;]*;", code, re.DOTALL)
    if match is None:
        return None
    return code[: match.end()] + f"\nreg {name};" + code[match.end() :]


def botch_index_range(code: str, error: ParsedError, rng: random.Random) -> Optional[str]:
    """Botched repair: clamp the index to zero regardless of intent."""
    name = error.details.get("name")
    index = error.details.get("index")
    if name is None or index is None:
        return None
    site = re.search(rf"{re.escape(name)}\s*\[\s*{index}\s*\]", code)
    if site is None:
        return None
    # "Fix" the index to zero regardless of intent.
    return code[: site.start()] + f"{name}[0]" + code[site.end() :]


def botch_delete_line(code: str, error: ParsedError, rng: random.Random) -> Optional[str]:
    """Botched repair: delete the offending line wholesale."""
    if error.line is None:
        return None
    lines = _lines(code)
    if not 1 <= error.line <= len(lines):
        return None
    if lines[error.line - 1].strip() in ("end", "endmodule", "begin"):
        return None
    del lines[error.line - 1]
    return "\n".join(lines)


def botch_event_expr(code: str, error: ParsedError, rng: random.Random) -> Optional[str]:
    """Botched repair: make clocked logic combinational."""
    # Turn the block combinational even though it is clocked logic.
    if "@(posedge)" in code:
        return code.replace("@(posedge)", "@(*)", 1)
    if "@()" in code:
        return code.replace("@()", "@(*)", 1)
    return None


def botch_c_style(code: str, error: ParsedError, rng: random.Random) -> Optional[str]:
    """Botched repair: neutralize the loop step (infinite loop)."""
    inc = re.search(r"(\w+)\s*\+\+", code)
    if inc:
        # i++ -> i = i : compiles, loop never advances.
        return code[: inc.start()] + f"{inc.group(1)} = {inc.group(1)}" + code[inc.end() :]
    return None


#: category -> (correct strategy, botched strategy)
STRATEGIES = {
    ErrorCategory.UNDECLARED_ID: (fix_undeclared, botch_undeclared),
    ErrorCategory.INDEX_RANGE: (fix_index_range, botch_index_range),
    ErrorCategory.INVALID_LVALUE: (fix_invalid_lvalue, botch_delete_line),
    ErrorCategory.MISSING_SEMICOLON: (fix_missing_semicolon, botch_delete_line),
    ErrorCategory.UNBALANCED_BLOCK: (fix_unbalanced, botch_delete_line),
    ErrorCategory.BAD_LITERAL: (fix_bad_literal, botch_delete_line),
    ErrorCategory.PORT_MISMATCH: (fix_port_mismatch, botch_delete_line),
    ErrorCategory.DUPLICATE_DECL: (fix_duplicate, botch_delete_line),
    ErrorCategory.C_STYLE_SYNTAX: (fix_c_style, botch_c_style),
    ErrorCategory.EVENT_EXPR: (fix_event_expr, botch_event_expr),
    ErrorCategory.SYNTAX_NEAR: (fix_ambiguous_syntax, botch_delete_line),
}


def apply_strategy(
    code: str,
    error: ParsedError,
    rng: random.Random,
    botch: bool = False,
) -> Optional[str]:
    """Apply the (correct or botched) strategy for one parsed error.

    Returns the edited source, or None when the strategy does not apply
    to this code."""
    category = error.category or ErrorCategory.SYNTAX_NEAR
    if category not in STRATEGIES:  # warning-only categories
        category = ErrorCategory.SYNTAX_NEAR
    correct, botched = STRATEGIES[category]
    strategy = botched if botch else correct
    result = strategy(code, error, rng)
    if result == code:
        return None
    return result
