"""Repair machinery: feedback parsing and edit strategies."""
