"""The simulated LLM repair model.

This is the reproduction's stand-in for gpt-3.5-turbo / GPT-4 (see
DESIGN.md).  It is a *mechanical* debugger whose skill is throttled by
calibrated knobs:

* **capability** -- per-sample ceiling: some erroneous samples are
  simply beyond the model no matter how many rounds it gets (the paper's
  "failure due to LLM's incapability", e.g. index arithmetic).  Whether
  a sample is within capability is a deterministic coin on (sample,
  tier, feedback flavour, RAG), biased by the sample's error categories
  (index-range arithmetic is hard, missing semicolons are easy).
* **round success** -- per-turn chance that a capable model reads the
  feedback correctly and applies the right strategy at the right site.
  One-shot prompting gets one turn; ReAct gets up to ten, which is why
  it approaches the capability ceiling.

When a turn succeeds the model applies the *real* corrective edits from
:mod:`repro.llm.repair.strategies`; when it fails it applies a plausible
botched edit.  Either way the result is genuine Verilog judged by the
real compiler -- the tables in the paper emerge from this interaction,
not from hard-coded numbers.

Honesty note: with "Simple" feedback (no compiler log) and for ambiguous
iverilog messages, a real LLM relies on latent knowledge to localize the
bug.  The simulated model stands in for that latent knowledge by
consulting the compiler internally, *gated by the same probability
knobs* -- the gate, not the knowledge, is what the experiments measure.
"""

from __future__ import annotations

import hashlib
import random

from ..diagnostics import ErrorCategory, compile_source
from ..rag.database import GuidanceEntry
from .base import RepairStep
from .repair.diagnosis import ParsedError, detect_flavor, parse_feedback
from .repair.strategies import STRATEGIES, apply_strategy

#: Per-sample fix-rate ceilings, calibrated to Table 1 (see DESIGN.md).
CAPABILITY: dict[str, dict[tuple[str, bool], float]] = {
    "gpt-3.5": {
        ("simple", False): 0.70,
        ("iverilog", False): 0.72,
        ("quartus", False): 0.79,
        ("simple", True): 0.69,
        ("iverilog", True): 0.81,
        ("quartus", True): 0.99,
    },
    "gpt-4": {
        ("simple", False): 0.86,
        ("iverilog", False): 0.89,
        ("quartus", False): 0.90,
        ("simple", True): 0.88,
        ("iverilog", True): 0.95,
        ("quartus", True): 0.995,
    },
}

#: Per-turn success probability for capable samples.
ROUND_SUCCESS: dict[str, dict[tuple[str, bool], float]] = {
    "gpt-3.5": {
        ("simple", False): 0.63,
        ("iverilog", False): 0.70,
        ("quartus", False): 0.68,
        ("simple", True): 0.60,
        ("iverilog", True): 0.95,
        ("quartus", True): 0.90,
    },
    "gpt-4": {
        ("simple", False): 0.90,
        ("iverilog", False): 0.95,
        ("quartus", False): 0.99,
        ("simple", True): 0.92,
        ("iverilog", True): 0.98,
        ("quartus", True): 0.99,
    },
}

#: Category hardness: shifts the capability ceiling per sample.  Index
#: arithmetic is the paper's canonical unfixable case (Fig. 6).
CATEGORY_DELTA: dict[ErrorCategory, float] = {
    # Roughly zero-mean under the dataset's category histogram, so the
    # aggregate fix rate tracks the CAPABILITY table while individual
    # samples still vary by hardness.
    ErrorCategory.INDEX_RANGE: -0.27,
    ErrorCategory.SYNTAX_NEAR: -0.12,
    ErrorCategory.UNBALANCED_BLOCK: -0.08,
    ErrorCategory.PORT_MISMATCH: -0.04,
    ErrorCategory.EVENT_EXPR: -0.02,
    ErrorCategory.INVALID_LVALUE: 0.0,
    ErrorCategory.UNDECLARED_ID: +0.01,
    ErrorCategory.BAD_LITERAL: +0.01,
    ErrorCategory.C_STYLE_SYNTAX: +0.02,
    ErrorCategory.DUPLICATE_DECL: +0.03,
    ErrorCategory.MISSING_SEMICOLON: +0.03,
}


def _stable_unit(key: str) -> float:
    """Deterministic uniform(0,1) from a string key."""
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def _tier_key(tier: str) -> str:
    return "gpt-4" if tier.startswith("gpt-4") else "gpt-3.5"


class SimulatedLLM:
    """RepairModel implementation with tier personas."""

    def __init__(self, tier: str = "gpt-3.5-sim", temperature: float = 0.4, seed: int = 0):
        self.tier = tier
        self.temperature = temperature
        self.seed = seed

    @property
    def name(self) -> str:
        return self.tier

    def with_seed(self, seed: int) -> "SimulatedLLM":
        """A copy of this model with a different sampling seed (same
        tier and temperature) -- the per-trial re-seeding hook used by
        ``RTLFixer.with_seed`` for the paper's repeated trials."""
        return SimulatedLLM(tier=self.tier, temperature=self.temperature, seed=seed)

    def start(self, code: str, flavor: str, use_rag: bool) -> "SimulatedRepairSession":
        return SimulatedRepairSession(self, code, flavor, use_rag)


class SimulatedRepairSession:
    """One debugging conversation; holds the capability coin."""

    def __init__(self, model: SimulatedLLM, code: str, flavor: str, use_rag: bool):
        self.model = model
        self.flavor = flavor
        self.use_rag = use_rag
        tier = _tier_key(model.tier)
        key = f"{model.seed}|{tier}|{flavor}|{use_rag}|{code}"
        self.rng = random.Random(key)

        ceiling = CAPABILITY[tier][(flavor, use_rag)]
        # Category hardness matters most when the model has headroom to
        # fail; near-perfect configurations (ReAct+RAG+Quartus) are
        # limited only by genuinely-unfixable samples.
        ceiling += self._difficulty_delta(code) * min(1.0, 2.5 * (1.0 - ceiling))
        # Temperature around the paper's 0.4 mildly widens/narrows skill.
        ceiling -= (model.temperature - 0.4) * 0.10
        self.capable = _stable_unit("cap|" + key) < max(0.01, min(0.995, ceiling))
        self.round_p = ROUND_SUCCESS[tier][(flavor, use_rag)]
        self.attempt = 0

    @staticmethod
    def _difficulty_delta(code: str) -> float:
        from ..runtime.cache import cached_compile

        result = cached_compile(code)
        categories = result.categories
        if not categories:
            return 0.0
        delta = sum(CATEGORY_DELTA.get(c, 0.0) for c in categories) / len(categories)
        # Multi-error samples are harder to fully fix.
        if len(result.errors) >= 3:
            delta -= 0.05
        return delta

    # -- the model turn -----------------------------------------------------

    def step(
        self,
        code: str,
        feedback: str,
        guidance: list[GuidanceEntry],
    ) -> RepairStep:
        self.attempt += 1
        errors = self._believed_errors(code, feedback, guidance)

        if not errors:
            # Nothing the model can see to fix: it asserts the code is fine
            # (the paper's "confident in incorrect syntax" failure mode).
            return RepairStep(
                thought="I reviewed the code and believe it is now "
                "syntactically correct.",
                code=code,
                declared_done=True,
            )

        if not self.capable and self.attempt >= 2:
            # The paper's hard-failure mode: the model keeps re-emitting
            # essentially the same wrong code, then insists it is correct.
            return RepairStep(
                thought="I have fixed every issue I can identify; the "
                "remaining message appears spurious.",
                code=code,
                declared_done=self.attempt >= 3,
            )

        success = self.capable and self.rng.random() < self.round_p
        if success:
            revised, notes = self._apply_correct(code, errors)
            thought = self._thought(errors, guidance, notes, success=True)
        else:
            revised, notes = self._apply_some(code, errors)
            thought = self._thought(errors, guidance, notes, success=False)
        return RepairStep(
            thought=thought,
            code=revised,
            used_guidance=tuple(guidance[:2]),
        )

    # -- belief formation --------------------------------------------------

    def _believed_errors(
        self, code: str, feedback: str, guidance: list[GuidanceEntry]
    ) -> list[ParsedError]:
        flavor = detect_flavor(feedback) if feedback else self.flavor
        errors = parse_feedback(feedback) if feedback else []

        if flavor == "simple" or not errors:
            return self._blind_diagnosis(code)

        # Ambiguous messages (bare "syntax error"): latent knowledge,
        # gated by skill, resolves them; retrieved guidance is the
        # fallback hint when that fails.
        resolved: list[ParsedError] = []
        guided = [g.category for g in guidance]
        for error in errors:
            if error.category is not None:
                resolved.append(error)
                continue
            if self.rng.random() < (0.75 if self.capable else 0.3):
                resolved.extend(self._true_errors_at(code, error.line))
            elif guided:
                resolved.append(ParsedError(category=guided[0], line=error.line,
                                            details=error.details))
            else:
                resolved.append(error)  # stays ambiguous
        return resolved

    def _blind_diagnosis(self, code: str) -> list[ParsedError]:
        """No usable feedback: the model re-reads the code itself."""
        p_spot = 0.8 if self.capable else 0.25
        if self.rng.random() < p_spot:
            return self._true_errors_at(code, line=None)
        # Hallucinated diagnosis: a random category at a random line.
        category = self.rng.choice(list(STRATEGIES))
        line = self.rng.randint(1, max(1, code.count("\n")))
        return [ParsedError(category=category, line=line)]

    def _true_errors_at(self, code: str, line: int | None) -> list[ParsedError]:
        """Latent-knowledge oracle (see module docstring): the real
        errors, optionally filtered near a reported line."""
        result = compile_source(code)
        errors = [
            ParsedError(category=d.category, line=d.line, details=dict(d.args))
            for d in result.errors
        ]
        if line is not None:
            near = [e for e in errors if e.line is not None and abs(e.line - line) <= 2]
            if near:
                return near
        return errors

    # -- edit application -----------------------------------------------------

    def _apply_correct(
        self, code: str, errors: list[ParsedError]
    ) -> tuple[str, list[str]]:
        """Success path: a capable model emits one revision that fixes
        everything it saw -- including follow-on errors exposed by its
        own edits (it proof-reads before answering)."""
        notes: list[str] = []
        current = code
        for error in errors[:4]:
            revised = apply_strategy(current, error, self.rng, botch=False)
            if revised is not None:
                current = revised
                notes.append(self._describe(error))
        for _ in range(3):
            remaining = compile_source(current)
            if remaining.ok:
                break
            progressed = False
            for diag in remaining.errors[:4]:
                error = ParsedError(
                    category=diag.category, line=diag.line, details=dict(diag.args)
                )
                revised = apply_strategy(current, error, self.rng, botch=False)
                if revised is not None:
                    current = revised
                    progressed = True
            if not progressed:
                break
        return current, notes

    def _apply_some(self, code: str, errors: list[ParsedError]) -> tuple[str, list[str]]:
        """Failure path: a plausible wrong edit.

        Capable models near-miss (botched variant of the right repair);
        incapable ones mostly touch the wrong thing or nothing at all,
        so lucky fixes stay rare across retries."""
        error = self.rng.choice(errors)
        roll = self.rng.random()
        if self.capable:
            # Near-misses that do not destroy information, so a later
            # round can still land the real fix.
            if roll < 0.45:
                wrong = ParsedError(
                    category=self.rng.choice(list(STRATEGIES)), line=error.line
                )
                revised = apply_strategy(code, wrong, self.rng, botch=False)
                if revised is not None:
                    return revised, [f"attempted a fix for {self._describe(wrong)}"]
            if roll < 0.7:
                return (
                    code + f"\n// reviewed: {self._describe(error)}\n",
                    ["made a cosmetic edit"],
                )
            return code, ["re-emitted the code unchanged"]
        # Incapable: plausible but wrong, sometimes destructive edits.
        if roll < 0.35:
            revised = apply_strategy(code, error, self.rng, botch=True)
            if revised is not None:
                return revised, [f"attempted a fix for {self._describe(error)}"]
        if roll < 0.65:
            wrong = ParsedError(
                category=self.rng.choice(list(STRATEGIES)), line=error.line
            )
            revised = apply_strategy(code, wrong, self.rng, botch=False)
            if revised is not None:
                return revised, [f"attempted a fix for {self._describe(wrong)}"]
        return code, ["re-emitted the code unchanged"]

    # -- narration ---------------------------------------------------------

    @staticmethod
    def _describe(error: ParsedError) -> str:
        label = error.category.value if error.category else "an unclear syntax error"
        where = f" at line {error.line}" if error.line else ""
        name = error.details.get("name")
        subject = f" on '{name}'" if name else ""
        return f"{label}{subject}{where}"

    def _thought(
        self,
        errors: list[ParsedError],
        guidance: list[GuidanceEntry],
        notes: list[str],
        success: bool,
    ) -> str:
        seen = ", ".join(self._describe(e) for e in errors[:3])
        parts = [f"The feedback indicates {seen}."]
        if guidance:
            parts.append(
                f"Retrieved guidance suggests: {guidance[0].guidance.split('.')[0]}."
            )
        if success:
            parts.append("I will revise the code accordingly and recompile.")
        elif notes:
            parts.append(f"I {notes[0]} and will recompile to check.")
        return " ".join(parts)
