"""LLM abstractions.

Two layers:

* :class:`LLMClient` -- the raw chat-completion surface (what the paper
  calls through the OpenAI API).  Only a documented stub exists in this
  offline environment (:mod:`repro.llm.openai_stub`).
* :class:`RepairModel` -- the semantic surface the agents actually need:
  start a repair session for a piece of broken Verilog, then repeatedly
  ask for a (thought, revised code) step given compiler feedback and
  retrieved guidance.  :class:`repro.llm.SimulatedLLM` implements this
  mechanically; an API-backed implementation would prompt a real model
  (see the stub for the exact prompts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from ..rag.database import GuidanceEntry


@dataclass(frozen=True)
class ChatMessage:
    role: str  # "system" | "user" | "assistant"
    content: str


@runtime_checkable
class LLMClient(Protocol):
    """Minimal chat-completion interface."""

    def complete(self, messages: list[ChatMessage], temperature: float = 0.4) -> str: ...


@dataclass(frozen=True)
class RepairStep:
    """One model turn: the reasoning trace plus the revised code."""

    thought: str
    code: str
    #: True when the model claims the code needs no further changes.
    declared_done: bool = False
    #: Guidance entries the model says it used this turn.
    used_guidance: tuple[GuidanceEntry, ...] = field(default=())


class RepairSession(Protocol):
    """A stateful debugging conversation about one erroneous sample."""

    def step(
        self,
        code: str,
        feedback: str,
        guidance: list[GuidanceEntry],
    ) -> RepairStep: ...


@runtime_checkable
class RepairModel(Protocol):
    """Factory for repair sessions."""

    name: str

    def start(self, code: str, flavor: str, use_rag: bool) -> RepairSession: ...
