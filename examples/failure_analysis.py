#!/usr/bin/env python3
"""Failure analysis (paper §5): the Fig. 6 index-arithmetic case the
agent cannot fix, and the Fig. 7 distribution of ReAct iterations.

Run:  python examples/failure_analysis.py
"""

from repro.core import RTLFixer
from repro.dataset import build_syntax_dataset, verilogeval
from repro.diagnostics import compile_source
from repro.eval import FIG6_CODE, run_figure7


def main() -> None:
    print("=== Fig. 6: the failure case ===")
    print(FIG6_CODE)
    print("--- Quartus log ---")
    print(compile_source(FIG6_CODE, flavor="quartus").log)

    wins = 0
    trials = 6
    last = None
    for seed in range(trials):
        result = RTLFixer(seed=seed).fix(FIG6_CODE)
        wins += result.success
        last = result
    print(f"\nRTLFixer fix rate on this sample: {wins}/{trials}")
    print("(the paper reports the agent cannot solve the index arithmetic)")
    if last is not None and not last.success:
        print("\nlast failing transcript (tail):")
        print(last.transcript.render()[-800:])

    print("\n=== Fig. 7: iterations needed by ReAct ===")
    dataset = build_syntax_dataset(
        verilogeval(), samples_per_problem=6, target_size=60, seed=0
    )
    result = run_figure7(dataset, repeats=2)
    print(result.render())
    print(f"\nsingle-revision share: {result.single_revision_share():.1%} "
          "(paper: ~90%)")


if __name__ == "__main__":
    main()
