#!/usr/bin/env python3
"""§5 extension demo: debugging *simulation* (logic) errors.

Takes a functionally wrong mux, shows the waveform-style feedback the
paper describes, and lets the simulation-debug agent repair it; then
shows the hard case where the agent gives up.

Run:  python examples/debug_simulation.py
"""

from repro.agents import SimDebugAgent
from repro.dataset import verilogeval
from repro.diagnostics import compile_source
from repro.llm import SimulatedLogicDebugger
from repro.sim import make_sim_feedback


def demo(problem_id: str, mutate: str, into: str, difficulty: str) -> None:
    corpus = verilogeval()
    problem = corpus.get(problem_id)
    buggy = problem.reference.replace(mutate, into)
    assert buggy != problem.reference

    print(f"=== {problem_id} ({difficulty}): buggy implementation ===")
    print(buggy)

    candidate = compile_source(buggy).elaborated
    golden = compile_source(problem.reference).elaborated
    feedback = make_sim_feedback(candidate, golden, samples=8)
    print("--- simulation feedback (as the agent sees it) ---")
    print(feedback.text)
    print()

    for seed in range(6):
        agent = SimDebugAgent(model=SimulatedLogicDebugger(seed=seed))
        result = agent.run(buggy, problem.reference, difficulty=difficulty)
        if result.success:
            print(f"FIXED in {result.iterations} iteration(s) (seed {seed}):")
            print(result.final_code)
            return
    print("NOT FIXED after 6 attempts "
          "(the paper: limited capability on logic errors)")
    print()


def main() -> None:
    # An easy polarity bug: the agent usually recovers it.
    demo("mux2to1", "sel ? b : a", "sel ? a : b", "easy")
    print("=" * 70)
    # A hard FSM transition bug: usually beyond the simulated debugger.
    demo("fsm_seq101", "S10: state <= in ? S101 : S0;",
         "S10: state <= in ? S1 : S0;", "hard")


if __name__ == "__main__":
    main()
