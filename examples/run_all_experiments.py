#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run, and save
the paper-vs-measured report as JSON + markdown.

Run:  python examples/run_all_experiments.py [--small]

The default scale takes several minutes; --small finishes in about one.
"""

import sys

from repro.eval.report import ReportScale, run_full_report


def main() -> None:
    small = "--small" in sys.argv
    scale = (
        ReportScale(
            dataset_size=60, dataset_samples_per_problem=6,
            repeats=2, n_samples=6, sim_samples=16, include_gpt4=False,
            simfix_samples_per_problem=1,
        )
        if small
        else ReportScale()
    )

    report = run_full_report(scale=scale, progress=lambda s: print(f"[{s}]"))

    for name, text in report.rendered.items():
        print(f"\n{'=' * 70}\n{name}\n{'=' * 70}")
        print(text)

    with open("reproduction_report.json", "w") as f:
        f.write(report.to_json())
    with open("reproduction_report.md", "w") as f:
        f.write(report.to_markdown())
    print("\nwrote reproduction_report.json / reproduction_report.md")


if __name__ == "__main__":
    main()
