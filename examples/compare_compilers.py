#!/usr/bin/env python3
"""Figure 5: feedback quality across compilers.

Compiles the same erroneous design with both diagnostic renderers and
then shows how fix rates react to feedback quality on a handful of
broken samples (the §4.3.1 ablation in miniature).

Run:  python examples/compare_compilers.py
"""

from repro.core import RTLFixer
from repro.dataset import ErrorInjector, verilogeval
from repro.diagnostics import SIMPLE_FEEDBACK, ErrorCategory, compile_source
from repro.eval import FIG5_CODE


def main() -> None:
    print("=== the same bug, three feedback levels (paper Fig. 5) ===\n")
    print(FIG5_CODE)
    print("--- Simple feedback ---")
    print(SIMPLE_FEEDBACK)
    print("\n--- iverilog ---")
    print(compile_source(FIG5_CODE, name="vector100r.sv", flavor="iverilog").log)
    print("\n--- Quartus ---")
    print(compile_source(FIG5_CODE, name="vector100r.sv", flavor="quartus").log)

    print("\n=== feedback quality vs fix rate on injected errors ===")
    injector = ErrorInjector(seed=42)
    corpus = verilogeval()
    samples = []
    for problem_id in ("counter4_reset", "vector_reverse8", "shift4_left",
                       "mux4to1_w8", "popcount8", "edge_detect_rise"):
        problem = corpus.get(problem_id)
        for category in (ErrorCategory.UNDECLARED_ID, ErrorCategory.MISSING_SEMICOLON):
            injection = injector.inject(problem.reference, category)
            if injection is not None:
                samples.append(injection.code)
    print(f"({len(samples)} broken samples, ReAct w/o RAG, 3 trials each)\n")

    for compiler in ("simple", "iverilog", "quartus"):
        wins = trials = 0
        for seed in range(3):
            fixer = RTLFixer(
                prompting="react", compiler=compiler, use_rag=False, seed=seed
            )
            for code in samples:
                wins += fixer.fix(code).success
                trials += 1
        print(f"  {compiler:9s}: fix rate {wins / trials:.2f}")


if __name__ == "__main__":
    main()
