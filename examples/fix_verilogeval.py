#!/usr/bin/env python3
"""Mini Table 1: build a slice of the VerilogEval-syntax dataset and
compare One-shot vs ReAct, with and without RAG, across feedback levels.

This is the full benchmark pipeline scaled down to run in ~1 minute;
``pytest benchmarks/test_bench_table1.py --benchmark-only`` runs the
full-size version.

Run:  python examples/fix_verilogeval.py
"""

from repro.core import RTLFixer
from repro.dataset import build_syntax_dataset, verilogeval
from repro.eval import render_table, run_fix_experiment


def main() -> None:
    dataset = build_syntax_dataset(
        verilogeval(), samples_per_problem=6, target_size=60, seed=0
    )
    print(f"dataset: {len(dataset)} erroneous implementations")
    print("error categories:", dict(dataset.category_histogram()))
    print()

    rows = []
    for prompting in ("oneshot", "react"):
        for compiler in ("simple", "iverilog", "quartus"):
            for use_rag in (False, True):
                if compiler == "simple" and use_rag:
                    continue
                fixer = RTLFixer(
                    prompting=prompting, compiler=compiler, use_rag=use_rag
                )
                run = run_fix_experiment(dataset, fixer, repeats=2)
                rows.append([
                    prompting, compiler, "w/" if use_rag else "w/o", run.rate,
                ])
                print(f"  {prompting:8s} {compiler:9s} "
                      f"{'w/ ' if use_rag else 'w/o'} RAG: {run.rate:.3f}")

    print()
    print(render_table(["prompt", "feedback", "RAG", "fix rate"], rows,
                       title="Mini Table 1 (2 trials per entry)"))


if __name__ == "__main__":
    main()
