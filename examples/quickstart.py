#!/usr/bin/env python3
"""Quickstart: fix one syntactically broken Verilog module.

The example reproduces the paper's Fig. 5 scenario: the generated module
clocks on ``clk`` but never declared it.  RTLFixer compiles the code,
reads the Quartus-style error, retrieves human expert guidance from the
RAG database, and repairs the module with a ReAct loop.

Run:  python examples/quickstart.py
"""

from repro.core import RTLFixer
from repro.diagnostics import compile_source

BROKEN = """\
module top_module (
  input [99:0] in,
  output reg [99:0] out
);
always @(posedge clk) begin
  out <= in;
end
endmodule
"""


def main() -> None:
    print("=== erroneous implementation ===")
    print(BROKEN)

    print("=== compiler says (Quartus flavour) ===")
    print(compile_source(BROKEN, flavor="quartus").log)
    print()

    fixer = RTLFixer()  # defaults: ReAct + RAG + Quartus feedback
    result = fixer.fix(BROKEN)

    print("=== ReAct transcript ===")
    print(result.transcript.render())
    print()

    print(f"=== outcome: {'FIXED' if result.success else 'FAILED'} "
          f"in {result.iterations} iteration(s) ===")
    print(result.final_code)

    check = compile_source(result.final_code)
    print(f"final compile: {'OK' if check.ok else check.log}")


if __name__ == "__main__":
    main()
