#!/usr/bin/env python3
"""Run the §3.4 curation pipeline end to end and save the resulting
VerilogEval-syntax-equivalent dataset (212 erroneous implementations).

Run:  python examples/build_syntax_dataset.py [out.json]
"""

import sys

from repro.dataset import build_syntax_dataset, verilogeval


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "verilogeval_syntax.json"
    print("sampling completions, filtering, clustering (DBSCAN/Jaccard)...")
    dataset = build_syntax_dataset(
        verilogeval(), samples_per_problem=20, target_size=212, seed=0
    )
    stats = dataset.stats
    print(f"\ncuration funnel:")
    print(f"  sampled completions : {stats.sampled}")
    print(f"  compiled clean      : {stats.compiled_ok}")
    print(f"  no module found     : {stats.no_module}")
    print(f"  empty module body   : {stats.empty_body}")
    print(f"  failing kept        : {stats.failing_kept}")
    print(f"  clusters            : {stats.clusters}")
    print(f"  final entries       : {stats.final}")

    print("\nerror-category histogram:")
    for category, count in dataset.category_histogram().items():
        print(f"  {category:24s} {count}")

    dataset.save(out)
    print(f"\nwrote {len(dataset)} entries to {out}")

    entry = dataset.entries[0]
    print(f"\nexample entry ({entry.problem_id}, {entry.categories}):")
    print(entry.code)


if __name__ == "__main__":
    main()
